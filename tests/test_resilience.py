"""Tests for deterministic fault injection and the resilience layer.

Three tiers:

* **Units** — `FaultInjector` schedules (explicit hits, tail windows,
  seeded probability), `Deadline`, `RetryPolicy`, `CircuitBreaker` (driven
  by a fake clock), `FallbackRouter`, and the `errors` taxonomy/status table.
* **Service semantics** — deadline admission and queued-expiry, bit-identical
  retry replays (inline and through a crashing worker pool), the circuit
  open → half-open → closed cycle, and degraded-mode fallback.
* **The invariant** — under seeded fault schedules (including probabilistic
  ones) over a pool-backed service, **every issued ticket resolves**: a
  response, a typed :class:`~repro.serving.errors.ServingError`, or a
  ``degraded`` result.  No hangs, no lost tickets.
"""

import time

import numpy as np
import pytest

from repro import (
    CircuitBreakerPolicy,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    FallbackRouter,
    ImputationRequest,
    ImputationService,
    ModelRegistry,
    PriSTI,
    PriSTIConfig,
    RetryPolicy,
    ServiceOverloaded,
    WorkerPool,
)
from repro.serving import PoolStopped, WorkerCrashed, faults
from repro.serving.errors import ServingError, classify
from repro.serving.faults import FaultInjector, FaultRule, InjectedFault
from repro.serving.resilience import CircuitBreaker, counts_as_breaker_failure


class FakeClock:
    """A manually advanced monotonic clock for deadline/breaker tests."""

    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _fast_config(**overrides):
    defaults = dict(window_length=10, epochs=1, iterations_per_epoch=1,
                    num_diffusion_steps=6, num_samples=2, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


@pytest.fixture(scope="module")
def trained_model(tiny_traffic_dataset):
    return PriSTI(_fast_config()).fit(tiny_traffic_dataset)


@pytest.fixture()
def registry(tmp_path, trained_model):
    registry = ModelRegistry(tmp_path / "models", max_loaded=4)
    registry.publish(trained_model, "traffic")
    return registry


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Every test starts and ends with the injector uninstalled."""
    faults.uninstall()
    yield
    faults.uninstall()


def _requests(dataset, model="traffic", count=4, length=10, num_samples=2):
    values, observed, evaluation = dataset.segment("test")
    mask = observed & ~evaluation
    return [
        ImputationRequest(model=model, values=values[s:s + length],
                          observed_mask=mask[s:s + length],
                          num_samples=num_samples, seed=100 + s)
        for s in range(count)
    ]


# ----------------------------------------------------------------------
# Fault injector units
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_noop_when_uninstalled(self):
        assert not faults.enabled()
        faults.inject("pool.worker_crash")          # must not raise
        assert faults.fired("gateway.connection_drop") is False

    def test_hits_schedule_is_exact(self):
        with faults.active([{"point": "service.flush", "hits": [2, 4]}]):
            for invocation in range(1, 6):
                if invocation in (2, 4):
                    with pytest.raises(InjectedFault):
                        faults.inject("service.flush")
                else:
                    faults.inject("service.flush")

    def test_after_window_with_count(self):
        rules = [{"point": "registry.load", "after": 2, "count": 2}]
        with faults.active(rules) as injector:
            fired = 0
            for _ in range(6):
                try:
                    faults.inject("registry.load")
                except InjectedFault:
                    fired += 1
            assert fired == 2                       # invocations 3 and 4 only
            assert injector.fired_by_point["registry.load"] == 2

    def test_probability_is_seed_deterministic(self):
        def outcomes(seed):
            injector = FaultInjector(
                [{"point": "pool.worker_crash", "probability": 0.5}], seed=seed)
            return [injector.decide("pool.worker_crash")[0] is not None
                    for _ in range(32)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_custom_error_type(self):
        with faults.active([{"point": "pool.worker_crash", "hits": [1]}]):
            with pytest.raises(WorkerCrashed):
                faults.inject("pool.worker_crash", error=WorkerCrashed)

    def test_sleep_action_stalls_instead_of_raising(self):
        rules = [{"point": "pool.worker_stall", "hits": [1],
                  "action": "sleep", "seconds": 0.05}]
        with faults.active(rules):
            started = time.monotonic()
            faults.inject("pool.worker_stall")      # stalls, no exception
            assert time.monotonic() - started >= 0.04

    def test_install_rejects_unknown_points(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.install([{"point": "nope.not_a_point", "hits": [1]}])
        assert not faults.enabled()

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(point="service.flush", action="explode")
        with pytest.raises(ValueError):
            FaultRule(point="service.flush", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(point="service.flush", hits=[0])

    def test_active_scoping_restores_previous(self):
        outer = faults.install([{"point": "service.flush", "hits": [99]}])
        try:
            with faults.active([{"point": "registry.load", "hits": [1]}]):
                assert faults.current() is not outer
            assert faults.current() is outer
        finally:
            faults.uninstall()

    def test_env_plan_json_and_file(self, tmp_path):
        plan = {"seed": 3, "rules": [{"point": "service.flush", "hits": [1]}]}
        import json

        assert faults.plan_from_env({faults.ENV_PLAN: json.dumps(plan)}) == plan
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        assert faults.plan_from_env({faults.ENV_PLAN: str(path)}) == plan
        assert faults.plan_from_env({}) is None
        installed = faults.install_from_env({faults.ENV_PLAN: json.dumps(plan)})
        try:
            assert installed.seed == 3 and faults.current() is installed
        finally:
            faults.uninstall()

    def test_stats_counts_invocations_and_fires(self):
        with faults.active([{"point": "service.flush", "hits": [1]}],
                           seed=11) as injector:
            with pytest.raises(InjectedFault):
                faults.inject("service.flush")
            faults.inject("service.flush")
            stats = injector.stats()
        assert stats["seed"] == 11
        assert stats["invocations"] == {"service.flush": 2}
        assert stats["fired"] == {"service.flush": 1}


# ----------------------------------------------------------------------
# Resilience primitive units
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_remaining_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        assert deadline.remaining(clock()) == pytest.approx(0.5)
        assert not deadline.expired(clock())
        clock.advance(0.6)
        assert deadline.expired(clock())
        assert deadline.remaining(clock()) == pytest.approx(-0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(float("inf"))


class TestRetryPolicy:
    def test_retries_only_configured_types_up_to_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(WorkerCrashed("x"), 1)
        assert policy.should_retry(OSError("x"), 2)
        assert not policy.should_retry(WorkerCrashed("x"), 3)
        assert not policy.should_retry(ValueError("x"), 1)
        assert not policy.should_retry(ServiceOverloaded("x"), 1)

    def test_backoff_is_capped_exponential_with_jitter(self):
        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.3,
                             jitter=0.5)
        rng = np.random.default_rng(0)
        first = policy.backoff_seconds(1, rng)
        assert 0.1 <= first <= 0.15
        deep = policy.backoff_seconds(10, rng)
        assert 0.3 <= deep <= 0.45                  # capped at max * (1+jitter)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset=10.0, probes=1):
        clock = FakeClock()
        policy = CircuitBreakerPolicy(failure_threshold=threshold,
                                      reset_timeout_seconds=reset,
                                      half_open_probes=probes)
        return CircuitBreaker(policy, clock=clock), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_cycle(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0, probes=1)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.1)
        assert breaker.state == "half_open"
        assert breaker.allow()                      # the single probe
        assert not breaker.allow()                  # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_total == 2

    def test_retry_after_counts_down(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)
        error = breaker.reject_error("traffic@1")
        assert isinstance(error, CircuitOpen)
        assert error.retry_after == pytest.approx(6.0)

    def test_breaker_failure_taxonomy(self):
        assert counts_as_breaker_failure(WorkerCrashed("x"))
        assert counts_as_breaker_failure(InjectedFault("x"))
        assert counts_as_breaker_failure(OSError("x"))
        assert not counts_as_breaker_failure(ServiceOverloaded("x"))
        assert not counts_as_breaker_failure(PoolStopped("x"))
        assert not counts_as_breaker_failure(DeadlineExceeded("x"))
        assert not counts_as_breaker_failure(CircuitOpen("x"))


class TestFallbackRouter:
    def test_shapes_and_observed_passthrough(self):
        fallback = FallbackRouter()
        values = np.array([[1.0, np.nan], [2.0, 4.0], [np.nan, 5.0]])
        raw = fallback.impute(values, num_samples=3)
        assert raw.median.shape == (3, 2)
        assert raw.samples.shape == (3, 3, 2)
        observed = np.isfinite(values)
        assert np.array_equal(raw.median[observed], values[observed])
        assert np.isfinite(raw.median).all()
        # Degraded samples carry no posterior spread: all equal the median.
        assert np.array_equal(raw.samples[0], raw.median)
        assert np.array_equal(raw.samples[2], raw.median)
        assert fallback.served == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackRouter().impute(np.zeros((2, 2)), num_samples=0)


class TestErrorTaxonomy:
    def test_status_table_most_specific_first(self):
        assert classify(ServiceOverloaded("x")) == (429, "overloaded")
        assert classify(DeadlineExceeded("x")) == (429, "deadline_exceeded")
        assert classify(CircuitOpen("x")) == (503, "circuit_open")
        assert classify(PoolStopped("x")) == (503, "pool_stopped")
        assert classify(WorkerCrashed("x")) == (500, "worker_crashed")
        assert classify(InjectedFault("x")) == (500, "serving_error")
        assert classify(ValueError("x")) == (500, "internal")

    def test_every_serving_error_is_catchable_as_base(self):
        for error in (ServiceOverloaded("x"), PoolStopped("x"),
                      WorkerCrashed("x"), CircuitOpen("x"),
                      DeadlineExceeded("x"), InjectedFault("x")):
            assert isinstance(error, ServingError)


# ----------------------------------------------------------------------
# Service semantics: deadlines
# ----------------------------------------------------------------------
class TestServiceDeadlines:
    def test_unmeetable_deadline_rejected_at_admission(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_delay_seconds=0.05)
        request = _requests(tiny_traffic_dataset, count=1)[0]
        request.deadline = Deadline.after(0.01, clock=service.clock)
        with pytest.raises(DeadlineExceeded):
            service.submit(request)
        assert service.stats()["deadline_rejections"] == 1
        assert service.pending() == 0               # no ticket was issued

    def test_meetable_deadline_is_served_bit_identically(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_delay_seconds=0.001)
        request = _requests(tiny_traffic_dataset, count=1)[0]
        reference = service.serve(request)
        request.deadline = Deadline.after(300.0, clock=service.clock)
        ticket = service.submit(request)
        service.flush()
        response = ticket.result(timeout=30)
        assert np.array_equal(response.samples, reference.samples)
        assert response.degraded is False

    def test_deadline_expiring_in_queue_rejects_at_flush(
            self, registry, tiny_traffic_dataset):
        clock = FakeClock()
        service = ImputationService(registry, max_delay_seconds=10.0,
                                    clock=clock)
        request = _requests(tiny_traffic_dataset, count=1)[0]
        request.deadline = Deadline.after(11.0, clock=clock)
        ticket = service.submit(request)            # meetable at admission
        clock.advance(60.0)                         # ...but it sat too long
        service.flush()
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=5)
        assert service.stats()["deadline_expired"] == 1

    def test_no_headroom_deadline_degrades_with_fallback(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_delay_seconds=0.05,
                                    fallback=FallbackRouter())
        request = _requests(tiny_traffic_dataset, count=1)[0]
        request.deadline = Deadline.after(0.01, clock=service.clock)
        response = service.submit(request).result(timeout=5)
        assert response.degraded is True
        observed = request.observed_mask & np.isfinite(request.values)
        assert np.array_equal(response.median[observed],
                              request.values[observed])
        assert service.stats()["degraded_served"] == 1


# ----------------------------------------------------------------------
# Service semantics: retries are bit-identical replays
# ----------------------------------------------------------------------
class TestServiceRetries:
    def test_inline_retry_replays_bit_identically(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(
            registry,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_seconds=0.001,
                                     retry_on=(InjectedFault,)))
        requests = _requests(tiny_traffic_dataset, count=2)
        reference = [service.serve(request) for request in requests]
        with faults.active([{"point": "service.flush", "hits": [1]}]):
            tickets = [service.submit(request) for request in requests]
            service.flush()                         # attempt 1 fails, 2 lands
        for ticket, clean in zip(tickets, reference):
            response = ticket.result(timeout=30)
            assert np.array_equal(response.samples, clean.samples)
            assert np.array_equal(response.median, clean.median)
        assert service.stats()["retries"] == 1

    def test_exhausted_retries_fail_tickets_with_the_error(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(
            registry,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_seconds=0.001,
                                     retry_on=(InjectedFault,)))
        request = _requests(tiny_traffic_dataset, count=1)[0]
        with faults.active([{"point": "service.flush", "after": 0}]):
            ticket = service.submit(request)
            with pytest.raises(InjectedFault):
                service.flush()
        with pytest.raises(InjectedFault):
            ticket.result(timeout=5)
        assert service.stats()["retries"] == 1      # one retry, then give up

    def test_pool_crash_retry_replays_bit_identically(
            self, registry, tiny_traffic_dataset):
        pool = WorkerPool(num_workers=2)
        service = ImputationService(
            registry, executor=pool,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_seconds=0.001))
        requests = _requests(tiny_traffic_dataset, count=3)
        reference = [service.serve(request) for request in requests]
        with pool:
            with faults.active([{"point": "pool.worker_crash", "hits": [1]}]):
                tickets = [service.submit(request) for request in requests]
                service.flush()
                responses = [ticket.result(timeout=120) for ticket in tickets]
        for response, clean in zip(responses, reference):
            assert np.array_equal(response.samples, clean.samples)
        assert service.stats()["retries"] == 1
        assert pool.stats()["crashed_batches"] == 1


# ----------------------------------------------------------------------
# Service semantics: circuit breaker cycle + degraded mode
# ----------------------------------------------------------------------
class TestServiceCircuit:
    def _service(self, registry, clock, **kwargs):
        return ImputationService(
            registry, clock=clock,
            circuit_policy=CircuitBreakerPolicy(failure_threshold=2,
                                                reset_timeout_seconds=30.0),
            **kwargs)

    def _trip(self, service, dataset, failures=2):
        """Fail ``failures`` flushes through an injected flush fault."""
        with faults.active([{"point": "service.flush", "after": 0,
                             "count": failures}]):
            for _ in range(failures):
                ticket = service.submit(_requests(dataset, count=1)[0])
                with pytest.raises(InjectedFault):
                    service.flush()
                with pytest.raises(InjectedFault):
                    ticket.result(timeout=5)

    def test_open_half_open_closed_cycle(self, registry, tiny_traffic_dataset):
        clock = FakeClock()
        service = self._service(registry, clock)
        self._trip(service, tiny_traffic_dataset)
        snapshot = service.circuits()["traffic@1"]
        assert snapshot["state"] == "open"
        assert service.any_circuit_open()
        # Open circuit: rejected at admission, with a retry estimate.
        request = _requests(tiny_traffic_dataset, count=1)[0]
        with pytest.raises(CircuitOpen) as excinfo:
            service.submit(request)
        assert excinfo.value.retry_after == pytest.approx(30.0)
        assert service.stats()["circuit_rejections"] == 1
        # After the reset timeout a probe is admitted; success closes.
        clock.advance(31.0)
        assert not service.any_circuit_open()       # half-open, probing
        ticket = service.submit(request)
        service.flush()
        assert ticket.result(timeout=30).median.shape[0] == 10
        assert service.circuits()["traffic@1"]["state"] == "closed"

    def test_open_circuit_degrades_with_fallback(
            self, registry, tiny_traffic_dataset):
        clock = FakeClock()
        service = self._service(registry, clock, fallback=FallbackRouter())
        self._trip(service, tiny_traffic_dataset)
        request = _requests(tiny_traffic_dataset, count=1)[0]
        response = service.submit(request).result(timeout=5)
        assert response.degraded is True
        assert service.stats()["degraded_served"] == 1

    def test_capacity_rejections_do_not_trip_the_breaker(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(
            registry, max_queue_depth=1,
            circuit_policy=CircuitBreakerPolicy(failure_threshold=1))
        requests = _requests(tiny_traffic_dataset, count=3)
        service.submit(requests[0])
        for request in requests[1:]:
            with pytest.raises(ServiceOverloaded):
                service.submit(request)
        assert not service.any_circuit_open()
        service.flush()


# ----------------------------------------------------------------------
# The invariant: every issued ticket resolves under seeded fault schedules
# ----------------------------------------------------------------------
class TestEveryTicketResolves:
    SCHEDULES = [
        # Deterministic burst: the first three worker executions crash.
        {"seed": 0, "rules": [
            {"point": "pool.worker_crash", "hits": [1, 2, 3]},
        ]},
        # Mixed probabilistic chaos: crashes, load failures, stalls.
        {"seed": 7, "rules": [
            {"point": "pool.worker_crash", "probability": 0.3},
            {"point": "backend.load", "probability": 0.25},
            {"point": "pool.worker_stall", "probability": 0.25,
             "action": "sleep", "seconds": 0.02},
        ]},
        # Hostile: everything fails for a while, then recovers.
        {"seed": 13, "rules": [
            {"point": "backend.load", "after": 0, "count": 4},
            {"point": "pool.worker_crash", "hits": [5, 6]},
            {"point": "service.queue_stall", "hits": [2],
             "action": "sleep", "seconds": 0.02},
        ]},
    ]

    @pytest.mark.parametrize("plan", SCHEDULES,
                             ids=[f"seed{p['seed']}" for p in SCHEDULES])
    def test_pool_backed_service_resolves_all_tickets(
            self, registry, tiny_traffic_dataset, plan):
        pool = WorkerPool(num_workers=2)
        service = ImputationService(
            registry, executor=pool, max_batch_requests=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_seconds=0.001,
                                     retry_on=(WorkerCrashed, OSError,
                                               InjectedFault)),
            circuit_policy=CircuitBreakerPolicy(failure_threshold=4,
                                                reset_timeout_seconds=0.05),
            fallback=FallbackRouter())
        requests = _requests(tiny_traffic_dataset, count=8)
        outcomes = {"ok": 0, "degraded": 0}
        with pool:
            with faults.active(plan):
                tickets = []
                for request in requests:
                    try:
                        tickets.append(service.submit(request))
                    except ServingError as error:
                        outcomes[type(error).__name__] = (
                            outcomes.get(type(error).__name__, 0) + 1)
                deadline = time.monotonic() + 120.0
                while service.pending() and time.monotonic() < deadline:
                    try:
                        service.flush()
                    except ServingError:
                        pass                        # tickets carry their error
                    time.sleep(0.005)
                for ticket in tickets:
                    try:
                        response = ticket.result(timeout=120)
                        outcomes["degraded" if response.degraded
                                 else "ok"] += 1
                    except ServingError as error:
                        outcomes[type(error).__name__] = (
                            outcomes.get(type(error).__name__, 0) + 1)
        # Every issued request is accounted for: response, degraded response,
        # or typed error — nothing hung (result() would have raised
        # TimeoutError, which is not a ServingError and would fail the test).
        assert sum(outcomes.values()) == len(requests)
        assert service.pending() == 0
        assert pool.backlog() == 0

    def test_disabled_injector_is_bit_identical_to_clean_run(
            self, registry, tiny_traffic_dataset):
        """With no plan installed, a service wired with the full resilience
        stack serves the same bits as a bare one (defaults-off contract)."""
        bare = ImputationService(registry)
        wired = ImputationService(
            registry,
            retry_policy=RetryPolicy(),
            circuit_policy=CircuitBreakerPolicy(),
            fallback=FallbackRouter())
        requests = _requests(tiny_traffic_dataset, count=3)
        for request in requests:
            clean = bare.serve(request)
            response = wired.serve(request)
            assert np.array_equal(response.samples, clean.samples)
            assert np.array_equal(response.median, clean.median)
            assert response.degraded is False

    def test_registry_load_fault_is_typed_and_counts_toward_breaker(
            self, registry, tiny_traffic_dataset):
        service = ImputationService(
            registry,
            circuit_policy=CircuitBreakerPolicy(failure_threshold=1))
        request = _requests(tiny_traffic_dataset, count=1)[0]
        with faults.active([{"point": "registry.load", "hits": [1]}]):
            ticket = service.submit(request)
            with pytest.raises(InjectedFault):
                service.flush()
            with pytest.raises(InjectedFault):
                ticket.result(timeout=5)
        assert service.circuits()["traffic@1"]["state"] == "open"
        with pytest.raises(CircuitOpen):
            service.submit(request)


class TestWorkerStall:
    def test_stall_delays_but_does_not_fail(self, registry,
                                            tiny_traffic_dataset):
        pool = WorkerPool(num_workers=1)
        service = ImputationService(registry, executor=pool)
        request = _requests(tiny_traffic_dataset, count=1)[0]
        reference = service.serve(request)
        with pool:
            with faults.active([{"point": "pool.worker_stall", "hits": [1],
                                 "action": "sleep", "seconds": 0.05}]):
                ticket = service.submit(request)
                service.flush()
                response = ticket.result(timeout=120)
        assert np.array_equal(response.samples, reference.samples)
        assert pool.stats()["crashed_batches"] == 0
