"""Tests for attention, graph message passing, embeddings and recurrent cells."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


@pytest.fixture
def adjacency(rng):
    a = rng.random((6, 6))
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    return a


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attention = nn.MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 5, 8)))
        assert attention(x).shape == (2, 3, 5, 8)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_attention_weights_are_distributions(self, rng):
        attention = nn.MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 8)))
        weights = attention.attention_weights(x, x).data
        assert weights.shape == (1, 2, 4, 4)
        assert np.allclose(weights.sum(axis=-1), 1.0)
        assert np.all(weights >= 0)

    def test_prior_conditioned_weights_independent_of_value(self, rng):
        """Eq. 7: the attention map must depend only on the prior source."""
        attention = nn.MultiHeadAttention(8, 2, rng=rng)
        prior = Tensor(rng.standard_normal((1, 5, 8)))
        value_a = Tensor(rng.standard_normal((1, 5, 8)))
        value_b = Tensor(rng.standard_normal((1, 5, 8)))
        weights_a = attention.attention_weights(prior, prior).data
        out_a = attention(value_a, query_source=prior)
        out_b = attention(value_b, query_source=prior)
        weights_after = attention.attention_weights(prior, prior).data
        assert np.allclose(weights_a, weights_after)
        assert not np.allclose(out_a.data, out_b.data)

    def test_gradients_flow_to_parameters(self, rng):
        attention = nn.MultiHeadAttention(4, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 4)))
        attention(x).sum().backward()
        for parameter in attention.parameters():
            assert parameter.grad is not None


class TestVirtualNodeAttention:
    def test_output_keeps_full_node_resolution(self, rng):
        attention = nn.VirtualNodeAttention(8, 2, num_nodes=10, num_virtual_nodes=3, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 10, 8)))
        assert attention(x).shape == (2, 4, 10, 8)

    def test_virtual_nodes_clamped_to_num_nodes(self, rng):
        attention = nn.VirtualNodeAttention(8, 2, num_nodes=4, num_virtual_nodes=100, rng=rng)
        assert attention.num_virtual_nodes == 4

    def test_pooling_parameters_have_expected_shape(self, rng):
        attention = nn.VirtualNodeAttention(8, 2, num_nodes=10, num_virtual_nodes=3, rng=rng)
        assert attention.key_pool.shape == (10, 3)
        assert attention.value_pool.shape == (10, 3)

    def test_gradients_flow(self, rng):
        attention = nn.VirtualNodeAttention(4, 2, num_nodes=5, num_virtual_nodes=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 5, 4)))
        attention(x).sum().backward()
        assert attention.key_pool.grad is not None


class TestGraphConv:
    def test_mpnn_shape_and_residual(self, rng, adjacency):
        mpnn = nn.MPNN(8, adjacency, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 4, 8)))
        assert mpnn(x).shape == (2, 6, 4, 8)

    def test_graph_conv_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            nn.GraphWaveNetConv(4, 4, np.zeros((3, 4)))

    def test_adaptive_adjacency_rows_sum_to_one(self, rng, adjacency):
        conv = nn.GraphWaveNetConv(4, 4, adjacency, rng=rng)
        adaptive = conv.adaptive_adjacency().data
        assert adaptive.shape == (6, 6)
        assert np.allclose(adaptive.sum(axis=-1), 1.0)

    def test_without_adaptive_support(self, rng, adjacency):
        conv = nn.GraphWaveNetConv(4, 5, adjacency, use_adaptive=False, rng=rng)
        out = conv(Tensor(rng.standard_normal((1, 6, 3, 4))))
        assert out.shape == (1, 6, 3, 5)

    def test_propagation_mixes_neighbours(self, rng):
        # A path graph: node 0 only connects to node 1, so after one round of
        # propagation node 0's features must depend on node 1's input.
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 1.0
        conv = nn.GraphWaveNetConv(2, 2, adjacency, order=1, use_adaptive=False,
                                   rng=np.random.default_rng(0))
        x = np.zeros((1, 3, 1, 2))
        x[0, 1, 0, :] = 1.0
        out_with = conv(Tensor(x)).data
        out_without = conv(Tensor(np.zeros_like(x))).data
        assert not np.allclose(out_with[0, 0], out_without[0, 0])


class TestEmbeddings:
    def test_sinusoidal_table_shape_and_range(self):
        table = nn.sinusoidal_table(50, 32)
        assert table.shape == (50, 32)
        assert np.all(np.abs(table) <= 1.0 + 1e-9)

    def test_temporal_encoding_distinct_rows(self):
        table = nn.temporal_encoding(20, 16)
        assert not np.allclose(table[0], table[10])

    def test_diffusion_step_embedding_shape(self, rng):
        embedding = nn.DiffusionStepEmbedding(30, embedding_dim=16, projection_dim=8, rng=rng)
        out = embedding(np.array([0, 5, 29]))
        assert out.shape == (3, 8)

    def test_diffusion_step_embedding_distinguishes_steps(self, rng):
        embedding = nn.DiffusionStepEmbedding(30, embedding_dim=16, projection_dim=8, rng=rng)
        out = embedding(np.array([0, 29])).data
        assert not np.allclose(out[0], out[1])

    def test_node_embedding_trainable(self, rng):
        embedding = nn.NodeEmbedding(7, 4, rng=rng)
        assert embedding().shape == (7, 4)
        assert embedding.weight.requires_grad


class TestRecurrent:
    def test_gru_cell_step(self, rng):
        cell = nn.GRUCell(3, 5, rng=rng)
        hidden = cell.initial_state(2)
        out = cell(Tensor(rng.standard_normal((2, 3))), hidden)
        assert out.shape == (2, 5)

    def test_gru_sequence_shapes(self, rng):
        gru = nn.GRU(3, 4, rng=rng)
        outputs, final = gru(Tensor(rng.standard_normal((2, 6, 3))))
        assert outputs.shape == (2, 6, 4)
        assert final.shape == (2, 4)
        assert np.allclose(outputs.data[:, -1, :], final.data)

    def test_gru_gradients_flow_through_time(self, rng):
        gru = nn.GRU(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 5, 2)), requires_grad=True)
        outputs, _ = gru(x)
        outputs.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[0, 0]).sum() > 0       # earliest step still receives gradient


class TestOptim:
    def test_adam_minimises_quadratic(self, rng):
        weights = nn.Parameter(rng.standard_normal(5))
        optimizer = nn.Adam([weights], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (weights * weights).sum()
            loss.backward()
            optimizer.step()
        assert float((weights.data ** 2).sum()) < 1e-4

    def test_sgd_momentum_minimises(self, rng):
        weights = nn.Parameter(np.array([5.0]))
        optimizer = nn.SGD([weights], lr=0.1, momentum=0.5)
        for _ in range(100):
            optimizer.zero_grad()
            ((weights - 1.0) ** 2).sum().backward()
            optimizer.step()
        assert abs(weights.data[0] - 1.0) < 1e-2

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_milestone_lr_decays(self, rng):
        weights = nn.Parameter(np.zeros(1))
        optimizer = nn.Adam([weights], lr=1e-3)
        scheduler = nn.MilestoneLR(optimizer, total_epochs=10, milestones=(0.5, 0.9), gamma=0.1)
        lrs = [scheduler.step() for _ in range(10)]
        assert lrs[4] == pytest.approx(1e-4)
        assert lrs[-1] == pytest.approx(1e-5)

    def test_clip_grad_norm(self, rng):
        weights = nn.Parameter(np.zeros(4))
        weights.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([weights], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(weights.grad) == pytest.approx(1.0)

    def test_weight_decay_shrinks(self):
        weights = nn.Parameter(np.array([1.0]))
        optimizer = nn.Adam([weights], lr=0.01, weight_decay=1.0)
        weights.grad = np.array([0.0])
        for _ in range(50):
            optimizer.step()
        assert abs(weights.data[0]) < 1.0
