"""Trace-cache lifecycle tests for compiled reverse-diffusion inference.

Covers the :class:`~repro.inference.CompiledStepCache` contract around the
engine: compiled-vs-eager bit-identity (DDPM and DDIM, eta 0 and > 0),
eviction at a configurable capacity, cross-thread replay reuse, invalidation
when the process default dtype changes, and the fallback paths (untraced
predictor, unsupported op, injected ``compile.trace`` fault) leaving results
bit-identical to an uncompiled run.
"""

import threading

import numpy as np
import pytest

from repro import InferenceEngine
from repro.diffusion import GaussianDiffusion, quadratic_schedule
from repro.inference import CompiledStepCache
from repro.serving import faults
from repro.tensor import Tensor, leaky_relu, set_default_dtype, tanh


def _as_tensor(value):
    """Both engine paths reach the predictor: the eager loop passes ndarrays,
    the compiled mirror passes Tensors.  Pinning the dtype keeps the wrap
    copy-free so the tracer resolves values by array identity."""
    if isinstance(value, Tensor):
        return value
    array = np.asarray(value)
    return Tensor(array, dtype=array.dtype)


def _tensor_predict(x_t, condition, steps, conditional_mask, cache=None):
    """A deterministic Tensor-op predictor (replayable on both paths)."""
    x, c = _as_tensor(x_t), _as_tensor(condition)
    return (tanh(x) * 0.25 + c * 0.125).data


def _numpy_predict(x_t, condition, steps, conditional_mask, cache=None):
    """Computes outside the trace: the tracer must refuse to bake this."""
    x = x_t.data if isinstance(x_t, Tensor) else np.asarray(x_t)
    c = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    return np.tanh(x) * 0.25 + c * 0.125


def _barrier_predict(x_t, condition, steps, conditional_mask, cache=None):
    """Routes through ``leaky_relu``, whose data-dependent constant raises a
    trace barrier — the unsupported-op fallback path."""
    x, c = _as_tensor(x_t), _as_tensor(condition)
    return leaky_relu(tanh(x) * 0.25 + c * 0.125, negative_slope=1.0).data


def _engine(*, predict=_tensor_predict, cache=None, seed=0, num_steps=6,
            ddim_steps=None, ddim_eta=0.0):
    diffusion = GaussianDiffusion(quadratic_schedule(num_steps),
                                  rng=np.random.default_rng(seed))
    return InferenceEngine(diffusion, predict, ddim_steps=ddim_steps,
                           ddim_eta=ddim_eta, compiled_cache=cache)


def _impute(engine, *, length=16, nodes=3, window_length=8, num_samples=4,
            stride=None):
    values = np.linspace(-1.0, 1.0, length * nodes).reshape(length, nodes)
    mask = np.ones((length, nodes), dtype=bool)
    return engine.impute_segment(
        values, mask, window_length=window_length, stride=stride,
        num_samples=num_samples,
        build_condition=lambda v, m: np.asarray(v, dtype=np.float64))


@pytest.mark.parametrize("sampler_kwargs", [
    {},                                       # DDPM
    {"ddim_steps": 4},                        # DDIM, deterministic
    {"ddim_steps": 4, "ddim_eta": 0.5},       # DDIM, stochastic
], ids=["ddpm", "ddim", "ddim-eta"])
def test_compiled_bit_identical_to_eager(sampler_kwargs):
    eager = _impute(_engine(seed=7, **sampler_kwargs))
    cache = CompiledStepCache()
    compiled = _impute(_engine(seed=7, cache=cache, **sampler_kwargs))
    assert compiled.dtype == eager.dtype
    assert np.array_equal(compiled, eager, equal_nan=True)
    stats = cache.stats()
    assert stats["compiled_entries"] == 1
    assert stats["fallbacks"] == 0
    assert stats["misses"] == 1
    assert stats["hits"] >= 1            # later chunks replay the program


def test_eviction_at_configured_capacity():
    cache = CompiledStepCache(capacity=2)
    for window_length in (6, 8, 10):     # three distinct chunk signatures
        _impute(_engine(cache=cache), window_length=window_length)
    stats = cache.stats()
    assert len(cache) == 2
    assert stats["evictions"] == 1
    assert stats["compiled_entries"] == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        CompiledStepCache(capacity=0)


def test_cross_thread_replay_reuse():
    """One model-owned cache, many engines on many threads: the program
    traced by the first caller serves all of them, and the per-sampler lock
    keeps concurrent replays of one program correct."""
    seeds = [11, 12, 13, 14]
    references = {seed: _impute(_engine(seed=seed)) for seed in seeds}
    cache = CompiledStepCache()
    _impute(_engine(seed=99, cache=cache))          # trace once
    assert cache.stats()["misses"] == 1

    results, errors = {}, []

    def worker(seed):
        try:
            results[seed] = _impute(_engine(seed=seed, cache=cache))
        except Exception as error:   # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in seeds]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for seed in seeds:
        assert np.array_equal(results[seed], references[seed], equal_nan=True)
    stats = cache.stats()
    assert stats["misses"] == 1          # nobody re-traced
    assert stats["hits"] >= len(seeds)
    assert stats["fallbacks"] == 0


def test_default_dtype_change_invalidates():
    cache = CompiledStepCache()
    _impute(_engine(seed=3, cache=cache))
    assert cache.stats()["misses"] == 1
    set_default_dtype("float32")
    try:
        result = _impute(_engine(seed=3, cache=cache))
    finally:
        set_default_dtype("float64")
    stats = cache.stats()
    # The default dtype is part of the signature: a second program is
    # traced instead of replaying (and possibly corrupting) the first.
    assert stats["misses"] == 2
    assert stats["compiled_entries"] == 2
    reference = _impute(_engine(seed=3))
    assert np.array_equal(result, reference, equal_nan=True)


@pytest.mark.parametrize("predict", [_numpy_predict, _barrier_predict],
                         ids=["untraced-predictor", "unsupported-op"])
def test_fallback_keeps_results_bit_identical(predict):
    eager = _impute(_engine(seed=5, predict=predict))
    cache = CompiledStepCache()
    compiled = _impute(_engine(seed=5, predict=predict, cache=cache))
    assert np.array_equal(compiled, eager, equal_nan=True)
    stats = cache.stats()
    assert stats["compiled_entries"] == 0
    assert stats["fallback_entries"] == 1    # negative-cached signature
    assert stats["fallbacks"] >= 1
    # The negative cache answers before noise is drawn, so a rerun is
    # bit-identical to a fresh eager run too.
    rerun = _impute(_engine(seed=5, predict=predict, cache=cache))
    assert np.array_equal(rerun, eager, equal_nan=True)


def test_injected_trace_fault_serves_eagerly():
    eager = _impute(_engine(seed=21))
    cache = CompiledStepCache()
    with faults.active([{"point": "compile.trace", "hits": [1]}]):
        result = _impute(_engine(seed=21, cache=cache))
    assert np.array_equal(result, eager, equal_nan=True)
    stats = cache.stats()
    assert stats["fallbacks"] >= 1
    assert stats["compiled_entries"] == 0
    assert stats["fallback_entries"] == 1
    # A fresh cache (fault plan gone) compiles the same signature fine.
    clean_cache = CompiledStepCache()
    clean = _impute(_engine(seed=21, cache=clean_cache))
    assert np.array_equal(clean, eager, equal_nan=True)
    assert clean_cache.stats()["compiled_entries"] == 1


def test_engine_counter_properties():
    cache = CompiledStepCache()
    engine = _engine(seed=2, cache=cache)
    assert (engine.trace_cache_hits, engine.trace_cache_misses,
            engine.fallback_count) == (0, 0, 0)
    _impute(engine)
    assert engine.trace_cache_misses == 1
    assert engine.trace_cache_hits == cache.hits >= 1
    assert engine.fallback_count == 0
    plain = _engine(seed=2)
    assert (plain.trace_cache_hits, plain.trace_cache_misses,
            plain.fallback_count) == (0, 0, 0)


def test_compile_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE", "0")
    cache = CompiledStepCache()
    eager = _impute(_engine(seed=4))
    result = _impute(_engine(seed=4, cache=cache))
    assert np.array_equal(result, eager, equal_nan=True)
    assert len(cache) == 0
    assert cache.stats()["misses"] == 0
