"""Unit tests for the tracing JIT (:mod:`repro.tensor.trace`).

Exercises the recorder and the planner directly: record/replay round-trips
on fresh inputs, the compile-time optimisation passes (attention-core
splitting, constant folding, cross-step CSE), view/arena interaction, and
the refusal paths (unsupported ops, runtime-derived parameters, untraced
values, input-signature mismatches).
"""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    TraceUnsupported,
    attention_core,
    compile_graph,
    leaky_relu,
    no_grad,
    tanh,
    trace,
)


def _record(fn, **inputs):
    """Trace ``fn`` over named input arrays; returns (program, traced_out)."""
    with trace() as tracer:
        bound = {name: tracer.add_input(name, array)
                 for name, array in inputs.items()}
        with no_grad():
            out = fn(**{name: Tensor(array, dtype=array.dtype)
                        for name, array in bound.items()})
        graph = tracer.finish([out])
    return compile_graph(graph), out.data


def test_record_replay_on_fresh_inputs():
    def fn(a, b):
        return tanh(a) * b + a.sum(axis=0, keepdims=True)

    a = np.linspace(-1, 1, 12).reshape(3, 4)
    b = np.linspace(2, 3, 12).reshape(3, 4)
    program, traced = _record(fn, a=a, b=b)
    assert np.array_equal(program.run({"a": a, "b": b})[0], traced)

    a2, b2 = a * 1.7 + 0.1, b - 0.5
    with no_grad():
        expected = fn(a=Tensor(a2), b=Tensor(b2)).data
    assert np.array_equal(program.run({"a": a2, "b": b2})[0], expected)


def test_replay_buffers_are_isolated_copies():
    program, _ = _record(lambda a: tanh(a) * 2.0,
                         a=np.linspace(0, 1, 6).reshape(2, 3))
    first = program.run({"a": np.full((2, 3), 0.25)})[0]
    snapshot = first.copy()
    program.run({"a": np.full((2, 3), 0.75)})[0]
    # The arena is reused between replays; returned outputs must not be.
    assert np.array_equal(first, snapshot)


def test_cse_merges_repeated_subexpressions():
    def fn(a, b):
        return tanh(a) * b + tanh(a) * b

    a = np.linspace(-2, 2, 8).reshape(2, 4)
    b = np.linspace(1, 2, 8).reshape(2, 4)
    program, traced = _record(fn, a=a, b=b)
    assert program.stats["cse_ops"] >= 2        # tanh and mul each deduped
    assert np.array_equal(program.run({"a": a, "b": b})[0], traced)


def test_constant_folding_bakes_capture_only_subgraphs():
    table = np.linspace(0.0, 1.0, 4)

    def fn(a):
        return a + tanh(Tensor(table, dtype=table.dtype)) * 2.0

    a = np.linspace(-1, 1, 4)
    program, traced = _record(fn, a=a)
    # tanh(table) and the scalar multiply run at compile time; only the
    # runtime add stays in the schedule.
    assert program.stats["folded_ops"] >= 2
    assert program.stats["ops_scheduled"] == 1
    assert np.array_equal(program.run({"a": a})[0], traced)


def test_attention_core_split_and_weight_reuse():
    rng = np.random.default_rng(0)
    q = rng.normal(size=(2, 3, 4))
    k = rng.normal(size=(2, 3, 4))
    v1 = rng.normal(size=(2, 3, 4))
    v2 = rng.normal(size=(2, 3, 4))

    def fn(q, k, v1, v2):
        # Same (q, k) applied to two value streams — the per-step pattern of
        # prior-conditioned attention.  After the split + CSE the softmax
        # map is computed once.
        return attention_core(q, k, v1, scale=0.5) \
            + attention_core(q, k, v2, scale=0.5)

    program, traced = _record(fn, q=q, k=k, v1=v1, v2=v2)
    assert program.stats["attention_splits"] == 2
    assert program.stats["cse_ops"] >= 1        # the shared weights node
    replay = program.run({"q": q, "k": k, "v1": v1, "v2": v2})[0]
    assert np.array_equal(replay, traced)


def test_unsupported_op_fails_the_trace():
    with trace() as tracer:
        a = tracer.add_input("a", np.linspace(-1, 1, 6))
        with no_grad():
            out = leaky_relu(Tensor(a, dtype=a.dtype))
        graph = tracer.finish([out])
    assert graph.failed is not None
    with pytest.raises(TraceUnsupported):
        compile_graph(graph)


def test_require_runtime_rejects_untraced_values():
    with trace() as tracer:
        a = tracer.add_input("a", np.ones(3))
        with no_grad():
            outside = np.tanh(a)           # computed behind the tracer's back
            tracer.require_runtime(outside, "prediction was not traced")
            out = Tensor(outside, dtype=outside.dtype) * 2.0
        graph = tracer.finish([out])
    assert "not traced" in graph.failed
    with pytest.raises(TraceUnsupported):
        compile_graph(graph)


def test_views_alias_storage_across_arena_reuse():
    def fn(a, b):
        folded = a.reshape(4, 2).transpose(1, 0)
        return folded * b + folded

    a = np.linspace(0, 1, 8).reshape(2, 4)
    b = np.linspace(1, 2, 8).reshape(2, 4)
    program, traced = _record(fn, a=a, b=b)
    a2, b2 = a + 3.0, b * 0.5
    with no_grad():
        expected = fn(a=Tensor(a2), b=Tensor(b2)).data
    assert np.array_equal(program.run({"a": a2, "b": b2})[0], expected)
    assert np.array_equal(program.run({"a": a, "b": b})[0], traced)


def test_replay_validates_input_signature():
    program, _ = _record(lambda a: tanh(a), a=np.ones((2, 3)))
    with pytest.raises(TraceUnsupported, match="do not match"):
        program.run({"b": np.ones((2, 3))})
    with pytest.raises(TraceUnsupported, match="traced as"):
        program.run({"a": np.ones((3, 2))})
    with pytest.raises(TraceUnsupported, match="traced as"):
        program.run({"a": np.ones((2, 3), dtype=np.float32)})


def test_stats_shape():
    program, _ = _record(lambda a: tanh(a) * 2.0 + 1.0, a=np.ones(5))
    stats = program.stats
    for key in ("ops_recorded", "ops_scheduled", "kernels", "fused_chains",
                "fused_ops", "attention_splits", "folded_ops", "cse_ops",
                "arena_buffers", "arena_bytes", "constants"):
        assert key in stats
    assert stats["ops_recorded"] >= stats["ops_scheduled"]
