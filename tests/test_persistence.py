"""Tests for the versioned model-artifact layer (repro.io).

The contract under test: ``load_model(path)`` restores a *bit-identical*
imputer (same imputations in both dtypes, same history, same timers), a
checkpoint-resumed run reproduces an uninterrupted one exactly, and
incompatible artifacts (unknown schema version, mismatched dtype) fail with
clear errors instead of silently loading garbage.
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import BRITSImputer, MeanImputer, RGAINImputer, VRINImputer
from repro.core import PriSTI, PriSTIConfig
from repro.io import ArtifactCache, ArtifactError, SCHEMA_VERSION, load_model, save_model
from repro.io.artifacts import MANIFEST_NAME
from repro.training import Checkpoint


def _fast_config(**overrides):
    defaults = dict(window_length=12, epochs=2, iterations_per_epoch=2,
                    num_diffusion_steps=8, num_samples=2, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


def _edit_manifest(path, **overrides):
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest.update(overrides)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_pristi_impute_is_bit_identical(self, tiny_traffic_dataset, tmp_path, dtype):
        model = PriSTI(_fast_config(dtype=dtype)).fit(tiny_traffic_dataset)
        path = str(tmp_path / "model")
        model.save(path)
        clone = load_model(path)
        original = model.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        restored = clone.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        assert original.samples.dtype == restored.samples.dtype
        assert np.array_equal(original.samples, restored.samples)
        assert np.array_equal(original.median, restored.median)

    def test_metadata_round_trips(self, tiny_traffic_dataset, tmp_path):
        model = PriSTI(_fast_config()).fit(tiny_traffic_dataset)
        clone = load_model(model.save(str(tmp_path / "model")))
        assert clone.history == model.history
        assert clone.training_seconds == model.training_seconds
        assert clone.scaler.mean_ == model.scaler.mean_
        assert clone.scaler.std_ == model.scaler.std_
        assert clone.config == model.config
        assert np.array_equal(clone.adjacency, model.adjacency)
        assert clone.rng.bit_generator.state == model.rng.bit_generator.state

    def test_windowed_float32_ambient_round_trip(self, tiny_traffic_dataset, tmp_path):
        """A baseline built under a float32 default must save and reload."""
        from repro.tensor import dtype_scope

        with dtype_scope("float32"):
            model = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                                 iterations_per_epoch=2, batch_size=4, seed=3)
            model.fit(tiny_traffic_dataset)
        saved_dtype = next(model.network.parameters()).data.dtype
        clone = load_model(model.save(str(tmp_path / "brits32")))
        assert next(clone.network.parameters()).data.dtype == saved_dtype
        original = model.impute(tiny_traffic_dataset, segment="test")
        restored = clone.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(original.samples, restored.samples)

    def test_windowed_round_trip(self, tiny_traffic_dataset, tmp_path):
        model = BRITSImputer(window_length=12, hidden_size=8, epochs=2,
                             iterations_per_epoch=2, batch_size=4, seed=3)
        model.fit(tiny_traffic_dataset)
        clone = load_model(model.save(str(tmp_path / "brits")))
        original = model.impute(tiny_traffic_dataset, segment="test")
        restored = clone.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(original.samples, restored.samples)

    def test_probabilistic_windowed_round_trip(self, tiny_traffic_dataset, tmp_path):
        """V-RIN consumes its RNG at impute time — the stream must resume."""
        model = VRINImputer(window_length=12, hidden_size=8, epochs=1,
                            iterations_per_epoch=2, batch_size=4, seed=5)
        model.fit(tiny_traffic_dataset)
        clone = load_model(model.save(str(tmp_path / "vrin")))
        original = model.impute(tiny_traffic_dataset, segment="test", num_samples=3)
        restored = clone.impute(tiny_traffic_dataset, segment="test", num_samples=3)
        assert np.array_equal(original.samples, restored.samples)

    def test_custom_subclass_round_trips(self, tiny_traffic_dataset, tmp_path):
        """User subclasses resolve through the dynamic registry at load time."""
        class TweakedBRITS(BRITSImputer):
            name = "Tweaked"

        model = TweakedBRITS(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=2, batch_size=4, seed=3)
        model.fit(tiny_traffic_dataset)
        clone = load_model(model.save(str(tmp_path / "custom")))
        assert type(clone) is TweakedBRITS
        original = model.impute(tiny_traffic_dataset, segment="test")
        restored = clone.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(original.samples, restored.samples)

    def test_rgain_round_trip_restores_discriminator(self, tiny_traffic_dataset, tmp_path):
        model = RGAINImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=2, batch_size=4, seed=5)
        model.fit(tiny_traffic_dataset)
        clone = load_model(model.save(str(tmp_path / "rgain")))
        for name, value in model.discriminator.state_dict().items():
            assert np.array_equal(value, clone.discriminator.state_dict()[name])
        original = model.impute(tiny_traffic_dataset, segment="test")
        restored = clone.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(original.samples, restored.samples)

class TestCheckpointResume:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_resumed_equals_uninterrupted(self, tiny_traffic_dataset, tmp_path, dtype):
        """Train E → checkpoint → resume E must equal train 2E straight."""
        config = _fast_config(epochs=4, dtype=dtype)
        straight = PriSTI(config).fit(tiny_traffic_dataset)

        interrupted = PriSTI(config).fit(tiny_traffic_dataset, max_epochs=2)
        resumed = load_model(interrupted.save(str(tmp_path / "ckpt")))
        assert len(resumed.history["loss"]) == 2
        resumed.fit(tiny_traffic_dataset)

        assert resumed.history["loss"] == straight.history["loss"]
        a = straight.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        b = resumed.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        assert np.array_equal(a.samples, b.samples)

    def test_windowed_resume_equals_uninterrupted(self, tiny_traffic_dataset, tmp_path):
        kwargs = dict(window_length=12, hidden_size=8, epochs=4,
                      iterations_per_epoch=2, batch_size=4, seed=3)
        straight = BRITSImputer(**kwargs).fit(tiny_traffic_dataset)

        interrupted = BRITSImputer(**kwargs).fit(tiny_traffic_dataset, max_epochs=2)
        resumed = load_model(interrupted.save(str(tmp_path / "ckpt")))
        resumed.fit(tiny_traffic_dataset)

        assert resumed.history["loss"] == straight.history["loss"]
        a = straight.impute(tiny_traffic_dataset, segment="test")
        b = resumed.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(a.samples, b.samples)

    def test_finished_artifact_is_lean_and_loads_without_trainer(self, tiny_traffic_dataset,
                                                                 tmp_path):
        """A budget-exhausted model persists no optimiser state and its clone
        never builds a trainer — yet fit() stays a no-op across round-trips."""
        model = PriSTI(_fast_config(epochs=2)).fit(tiny_traffic_dataset)
        path = model.save(str(tmp_path / "final"))
        with np.load(os.path.join(path, "arrays.npz")) as data:
            assert not any(name.startswith("optim.") for name in data.files)
        clone = load_model(path)
        assert clone.trainer is None
        weights = {name: value.copy() for name, value in clone.network.state_dict().items()}
        clone.fit(tiny_traffic_dataset)        # no-op: budget already spent
        assert clone.trainer is None
        for name, value in clone.network.state_dict().items():
            assert np.array_equal(value, weights[name])
        # The epoch counters survive a second save → load → fit round-trip.
        again = load_model(clone.save(str(tmp_path / "resaved")))
        again.fit(tiny_traffic_dataset)
        assert len(again.history["loss"]) == 2

    def test_unfinished_artifact_keeps_optimizer_state(self, tiny_traffic_dataset, tmp_path):
        """A mid-training checkpoint must still carry the Adam moments."""
        model = PriSTI(_fast_config(epochs=4)).fit(tiny_traffic_dataset, max_epochs=2)
        path = model.save(str(tmp_path / "ckpt"))
        with np.load(os.path.join(path, "arrays.npz")) as data:
            assert any(name.startswith("optim.") for name in data.files)

    def test_mid_fit_checkpoint_carries_training_time(self, tiny_traffic_dataset, tmp_path):
        """A checkpoint saved at an epoch boundary records the time so far."""
        path = str(tmp_path / "timed")
        model = PriSTI(_fast_config(epochs=2))
        model.fit(tiny_traffic_dataset, callbacks=[Checkpoint(path, every=2)])
        restored = load_model(path)
        assert restored.training_seconds > 0.0
        # The checkpoint was written before fit's trailing bookkeeping, so
        # its timer is at most the live model's final value.
        assert restored.training_seconds <= model.training_seconds

    def test_interrupted_overwrite_preserves_previous_checkpoint(self, tiny_traffic_dataset,
                                                                 tmp_path, monkeypatch):
        """A save that crashes mid-write must leave the old artifact loadable."""
        import repro.io.artifacts as artifacts_module

        path = str(tmp_path / "model")
        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        model.save(path)
        before = load_model(path).history["loss"]

        real_savez = np.savez

        def exploding_savez(*args, **kwargs):
            real_savez(*args, **kwargs)
            raise RuntimeError("simulated crash mid-save")

        monkeypatch.setattr(artifacts_module.np, "savez", exploding_savez)
        with pytest.raises(RuntimeError, match="simulated crash"):
            model.save(path)
        monkeypatch.undo()
        # The original artifact is untouched and still loads.
        assert load_model(path).history["loss"] == before

    def test_checkpoint_callback_writes_resumable_artifact(self, tiny_traffic_dataset, tmp_path):
        path = str(tmp_path / "periodic")
        config = _fast_config(epochs=3)
        model = PriSTI(config)
        model.fit(tiny_traffic_dataset, callbacks=[Checkpoint(path, every=1)])
        restored = load_model(path)
        # The callback saved at every epoch boundary; the artifact on disk is
        # the final state and imputes identically to the live model.
        assert restored.history["loss"] == model.history["loss"]
        a = model.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        b = restored.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        assert np.array_equal(a.samples, b.samples)


class TestFailureModes:
    def test_checkpoint_final_save_when_every_misaligns(self, tiny_traffic_dataset, tmp_path):
        """on_train_end must leave a final checkpoint when epochs % every != 0."""
        path = str(tmp_path / "misaligned")
        model = PriSTI(_fast_config(epochs=3))
        model.fit(tiny_traffic_dataset, callbacks=[Checkpoint(path, every=5)])
        # No epoch boundary hit every=5, so only the train-end fallback saved.
        restored = load_model(path)
        assert restored.history["loss"] == model.history["loss"]
        assert len(restored.history["loss"]) == 3

    def test_save_onto_existing_file_raises_artifact_error(self, tiny_traffic_dataset, tmp_path):
        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        target = tmp_path / "occupied"
        target.write_text("a regular file")
        with pytest.raises(ArtifactError, match="cannot write artifact"):
            model.save(str(target))
        # No staging directory leaks behind the failed save.
        leftovers = [name for name in os.listdir(str(tmp_path)) if ".tmp" in name]
        assert leftovers == []

    def test_config_drift_rejected_as_artifact_error(self, tiny_traffic_dataset, tmp_path):
        """An additive config field from another build is an ArtifactError (cache miss)."""
        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        path = model.save(str(tmp_path / "model"))
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["config"]["field_from_the_future"] = 42
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="config does not match"):
            load_model(path)

    def test_unknown_schema_version_rejected(self, tiny_traffic_dataset, tmp_path):
        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        path = model.save(str(tmp_path / "model"))
        _edit_manifest(path, schema_version=SCHEMA_VERSION + 99)
        with pytest.raises(ArtifactError, match="schema version"):
            load_model(path)

    def test_mismatched_dtype_rejected(self, tiny_traffic_dataset, tmp_path):
        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        path = model.save(str(tmp_path / "model"))
        # The manifest claims float32 but the arrays are float64.
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["dtype"] = "float32"
        manifest["config"]["dtype"] = "float32"
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="dtype mismatch"):
            load_model(path)

    def test_not_an_artifact_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no model artifact"):
            load_model(str(tmp_path / "nowhere"))

    def test_corrupt_arrays_rejected_as_artifact_error(self, tiny_traffic_dataset, tmp_path):
        """A torn arrays.npz must surface as ArtifactError (so caches miss)."""
        from repro.io.artifacts import ARRAYS_NAME

        model = PriSTI(_fast_config(epochs=1)).fit(tiny_traffic_dataset)
        cache = ArtifactCache(str(tmp_path / "cache"))
        path = model.save(cache.path("PriSTI", "d", "p", "prof", 0))
        with open(os.path.join(path, ARRAYS_NAME), "wb") as handle:
            handle.write(b"not a zip file")
        with pytest.raises(ArtifactError, match="unreadable arrays"):
            load_model(path)
        # The cache treats the unreadable artifact as a plain miss.
        assert cache.load("PriSTI", "d", "p", "prof", 0) is None

    def test_torn_overwrite_rejected(self, tiny_traffic_dataset, tmp_path):
        """New arrays + old manifest (interrupted overwrite) must not load."""
        from repro.io.artifacts import ARRAYS_NAME

        model = PriSTI(_fast_config(epochs=2)).fit(tiny_traffic_dataset)
        path = model.save(str(tmp_path / "model"))
        # Simulate a crash between the two writes of a later overwrite: the
        # arrays file is replaced (fresh save elsewhere) but the manifest
        # still belongs to the first save.
        other = PriSTI(_fast_config(epochs=2)).fit(tiny_traffic_dataset)
        other_path = other.save(str(tmp_path / "other"))
        os.replace(os.path.join(other_path, ARRAYS_NAME),
                   os.path.join(path, ARRAYS_NAME))
        with pytest.raises(ArtifactError, match="torn"):
            load_model(path)

    def test_unfitted_model_rejected(self):
        with pytest.raises(ArtifactError, match="unfitted"):
            save_model(PriSTI(_fast_config()), "/tmp/should-not-exist")

    def test_unsupported_family_rejected(self, tiny_traffic_dataset):
        method = MeanImputer().fit(tiny_traffic_dataset)
        with pytest.raises(ArtifactError, match="does not support"):
            method.save("/tmp/should-not-exist")


class TestArtifactCache:
    def test_cache_hit_skips_retraining(self, tiny_traffic_dataset, tmp_path):
        from repro.experiments import Profile, train_method

        micro = Profile(
            name="micro",
            aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
            traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
            window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
            diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
            deep_epochs=1, deep_iterations=2, batch_size=4,
            num_samples=2, forecast_epochs=1, forecast_iterations=2,
        )
        cache = ArtifactCache(str(tmp_path / "cache"))
        first = train_method("BRITS", tiny_traffic_dataset, micro,
                             dataset_name="tiny", pattern="block", cache=cache)
        second = train_method("BRITS", tiny_traffic_dataset, micro,
                              dataset_name="tiny", pattern="block", cache=cache)
        # The second call loaded the artifact: identical weights and the
        # original model-owned training time, not a fresh retrain.
        assert second.training_seconds == first.training_seconds
        for name, value in first.network.state_dict().items():
            assert np.array_equal(value, second.network.state_dict()[name])

    def test_unsupported_methods_bypass_cache(self, tiny_traffic_dataset, tmp_path):
        from repro.experiments import Profile, train_method

        micro = Profile(
            name="micro",
            aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
            traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
            window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
            diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
            deep_epochs=1, deep_iterations=2, batch_size=4,
            num_samples=2, forecast_epochs=1, forecast_iterations=2,
        )
        cache = ArtifactCache(str(tmp_path / "cache"))
        method = train_method("Mean", tiny_traffic_dataset, micro,
                              dataset_name="tiny", pattern="block", cache=cache)
        assert method is not None
        # No artifact was written for the unsupported family.
        assert os.listdir(str(tmp_path / "cache")) == []

    def test_variant_separates_keys(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        base = cache.key("PriSTI", "aqi36", "failure", "fast", 0)
        varied = cache.key("PriSTI", "aqi36", "failure", "fast", 0, variant="station3")
        assert base != varied

    def test_store_propagates_write_failures(self, tiny_traffic_dataset, tmp_path):
        """Only unsupported families are skipped; real I/O errors must surface."""
        cache = ArtifactCache(str(tmp_path / "cache"))
        model = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=2, batch_size=4, seed=3)
        model.fit(tiny_traffic_dataset)
        key = ("BRITS", "tiny", "block", "micro", 0)
        with open(cache.path(*key), "w", encoding="utf-8") as handle:
            handle.write("a plain file squatting on the cache key")
        with pytest.raises(ArtifactError, match="cannot write artifact"):
            cache.store(model, *key)

    def test_different_dataset_contents_is_a_miss(self, tiny_traffic_dataset, tmp_path):
        """Same coordinates, different data → the content fingerprint splits keys."""
        from repro.data import metr_la_like
        from repro.experiments import Profile, train_method

        micro = Profile(
            name="micro",
            aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
            traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
            window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
            diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
            deep_epochs=1, deep_iterations=2, batch_size=4,
            num_samples=2, forecast_epochs=1, forecast_iterations=2,
        )
        cache = ArtifactCache(str(tmp_path / "cache"))
        train_method("BRITS", tiny_traffic_dataset, micro,
                     dataset_name="tiny", pattern="block", cache=cache)
        other = metr_la_like(num_nodes=6, num_days=4, steps_per_day=24,
                             missing_pattern="block", seed=99)
        train_method("BRITS", other, micro,
                     dataset_name="tiny", pattern="block", cache=cache)
        # Two artifacts: the second dataset did not hit the first's entry.
        assert len(os.listdir(str(tmp_path / "cache"))) == 2

    def test_expected_guard_rejects_mismatched_config(self, tiny_traffic_dataset, tmp_path):
        """``load(expected=...)`` itself refuses class or config mismatches."""
        cache = ArtifactCache(str(tmp_path / "cache"))
        key = ("BRITS", "tiny", "block", "micro", 0)
        model = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=2, batch_size=4, seed=3)
        model.fit(tiny_traffic_dataset)
        cache.store(model, *key)

        same = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                            iterations_per_epoch=2, batch_size=4, seed=3)
        assert cache.load(*key, expected=same) is not None
        wider = BRITSImputer(window_length=12, hidden_size=16, epochs=1,
                             iterations_per_epoch=2, batch_size=4, seed=3)
        assert cache.load(*key, expected=wider) is None
        other_class = VRINImputer(window_length=12, hidden_size=8, epochs=1,
                                  iterations_per_epoch=2, batch_size=4, seed=3)
        assert cache.load(*key, expected=other_class) is None
        # Without a guard the artifact still loads (coordinates-only lookup).
        assert cache.load(*key) is not None

    def test_stale_profile_config_is_a_miss(self, tiny_traffic_dataset, tmp_path):
        """Changing a profile's hyperparameters under the same name retrains."""
        import dataclasses

        from repro.experiments import Profile, train_method

        micro = Profile(
            name="micro",
            aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
            traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
            window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
            diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
            deep_epochs=1, deep_iterations=2, batch_size=4,
            num_samples=2, forecast_epochs=1, forecast_iterations=2,
        )
        cache = ArtifactCache(str(tmp_path / "cache"))
        first = train_method("BRITS", tiny_traffic_dataset, micro,
                             dataset_name="tiny", pattern="block", cache=cache)
        wider = dataclasses.replace(micro, channels=16)   # same name, new config
        second = train_method("BRITS", tiny_traffic_dataset, wider,
                              dataset_name="tiny", pattern="block", cache=cache)
        assert second.hidden_size == 16 != first.hidden_size
        # The retrained model replaced the stale artifact.
        third = train_method("BRITS", tiny_traffic_dataset, wider,
                             dataset_name="tiny", pattern="block", cache=cache)
        assert third.training_seconds == second.training_seconds
