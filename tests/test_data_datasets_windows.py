"""Tests for the dataset container, synthetic generators, windows and scalers."""

import numpy as np
import pytest

from repro.data import (
    DatasetSplit,
    StandardScaler,
    WindowSampler,
    aqi36_like,
    generate_signals,
    make_dataset,
    metr_la_like,
    pems_bay_like,
)
from repro.graph import highway_corridor_network


class TestDatasetContainer:
    def test_basic_properties(self, tiny_traffic_dataset):
        dataset = tiny_traffic_dataset
        assert dataset.num_nodes == 6
        assert dataset.num_steps == 4 * 24
        assert dataset.adjacency.shape == (6, 6)
        assert 0 <= dataset.original_missing_rate() < 0.3
        assert dataset.injected_missing_rate() > 0

    def test_eval_mask_subset_of_observed(self, tiny_traffic_dataset):
        dataset = tiny_traffic_dataset
        assert not np.any(dataset.eval_mask & ~dataset.observed_mask)
        assert not np.any(dataset.input_mask & dataset.eval_mask)

    def test_segments_partition_time(self, tiny_traffic_dataset):
        dataset = tiny_traffic_dataset
        lengths = [dataset.segment(name)[0].shape[0] for name in ("train", "valid", "test")]
        assert sum(lengths) == dataset.num_steps

    def test_segment_dataset_view(self, tiny_traffic_dataset):
        view = tiny_traffic_dataset.segment_dataset("test")
        assert view.num_steps == tiny_traffic_dataset.segment("test")[0].shape[0]
        assert view.num_nodes == tiny_traffic_dataset.num_nodes

    def test_with_eval_mask_replaces(self, tiny_traffic_dataset):
        new_mask = np.zeros_like(tiny_traffic_dataset.eval_mask)
        replaced = tiny_traffic_dataset.with_eval_mask(new_mask)
        assert replaced.eval_mask.sum() == 0
        assert replaced.values is tiny_traffic_dataset.values

    def test_invalid_eval_mask_rejected(self, tiny_traffic_dataset):
        bad = np.ones_like(tiny_traffic_dataset.eval_mask)
        bad &= ~tiny_traffic_dataset.observed_mask
        bad |= ~tiny_traffic_dataset.observed_mask
        if bad.sum() == 0:
            pytest.skip("no originally-missing entries to violate the invariant")
        with pytest.raises(ValueError):
            tiny_traffic_dataset.with_eval_mask(bad)

    def test_fractional_split(self):
        split = DatasetSplit.fractional(100, train=0.7, valid=0.1)
        assert split.train == slice(0, 70)
        assert split.valid == slice(70, 80)
        assert split.test == slice(80, 100)

    def test_repr_contains_name(self, tiny_traffic_dataset):
        assert "metr-la-like" in repr(tiny_traffic_dataset)


class TestSyntheticGenerators:
    def test_generate_signals_shape_and_nonnegative(self, rng):
        network = highway_corridor_network(5, rng=rng)
        values = generate_signals(network, 100, 24, nonnegative=True, rng=rng)
        assert values.shape == (100, 5)
        assert np.all(values >= 0)

    def test_generators_reproducible(self):
        first = metr_la_like(num_nodes=5, num_days=2, seed=3)
        second = metr_la_like(num_nodes=5, num_days=2, seed=3)
        assert np.allclose(first.values, second.values)
        assert np.array_equal(first.eval_mask, second.eval_mask)

    def test_generators_differ_across_seeds(self):
        first = metr_la_like(num_nodes=5, num_days=2, seed=3)
        second = metr_la_like(num_nodes=5, num_days=2, seed=4)
        assert not np.allclose(first.values, second.values)

    def test_all_three_dataset_families(self):
        air = aqi36_like(num_nodes=5, num_days=4)
        metr = metr_la_like(num_nodes=5, num_days=2)
        bay = pems_bay_like(num_nodes=5, num_days=2)
        assert air.name.startswith("aqi36")
        assert metr.name.startswith("metr-la")
        assert bay.name.startswith("pems-bay")
        # PEMS-BAY has essentially no original missing data.
        assert bay.original_missing_rate() < air.original_missing_rate()

    def test_spatial_correlation_present(self):
        """Neighbouring sensors must correlate more than distant ones on average."""
        dataset = metr_la_like(num_nodes=10, num_days=6, seed=0)
        values = dataset.values
        correlation = np.corrcoef(values.T)
        adjacency = dataset.adjacency
        connected = adjacency > 0
        np.fill_diagonal(connected, False)
        disconnected = (adjacency == 0)
        np.fill_diagonal(disconnected, False)
        if connected.sum() and disconnected.sum():
            assert correlation[connected].mean() > correlation[disconnected].mean()

    def test_make_dataset_patterns(self, rng):
        network = highway_corridor_network(5, rng=rng)
        values = generate_signals(network, 120, 24, rng=rng)
        observed = np.ones_like(values, dtype=bool)
        for pattern in ("point", "block", "failure", "none"):
            dataset = make_dataset(network, values, observed, 24, pattern, rng=rng)
            assert dataset.num_steps == 120
        with pytest.raises(ValueError):
            make_dataset(network, values, observed, 24, "bogus", rng=rng)


class TestWindowSampler:
    def test_window_count_and_shape(self, tiny_traffic_dataset):
        sampler = WindowSampler.from_dataset(tiny_traffic_dataset, "train",
                                             window_length=12, stride=12)
        assert len(sampler) >= 1
        values, observed, evaluation = sampler.window(0)
        assert values.shape == (6, 12)
        assert observed.dtype == bool and evaluation.dtype == bool

    def test_batches_cover_all_windows(self, tiny_traffic_dataset):
        sampler = WindowSampler.from_dataset(tiny_traffic_dataset, "train",
                                             window_length=8, stride=8)
        seen = 0
        for batch in sampler.iter_batches(batch_size=3):
            assert batch.values.shape[1:] == (6, 8)
            seen += len(batch)
        assert seen == len(sampler)

    def test_random_batch_shape(self, tiny_traffic_dataset, rng):
        sampler = WindowSampler.from_dataset(tiny_traffic_dataset, "train", window_length=8)
        batch = sampler.random_batch(5, rng=rng)
        assert batch.values.shape == (5, 6, 8)
        assert batch.input_mask.shape == (5, 6, 8)
        assert not np.any(batch.input_mask & batch.eval_mask)

    def test_window_too_long_raises(self, tiny_traffic_dataset):
        with pytest.raises(ValueError):
            WindowSampler.from_dataset(tiny_traffic_dataset, "valid", window_length=10_000)

    def test_shuffle_changes_order(self, tiny_traffic_dataset):
        sampler = WindowSampler.from_dataset(tiny_traffic_dataset, "train",
                                             window_length=4, stride=2)
        ordered = [batch.starts.tolist() for batch in sampler.iter_batches(4)]
        shuffled = [batch.starts.tolist() for batch in
                    sampler.iter_batches(4, shuffle=True, rng=np.random.default_rng(0))]
        assert ordered != shuffled


class TestStandardScaler:
    def test_round_trip(self, rng):
        scaler = StandardScaler()
        values = rng.standard_normal((50, 3)) * 7 + 20
        transformed = scaler.fit_transform(values)
        assert abs(transformed.mean()) < 1e-9
        assert np.allclose(scaler.inverse_transform(transformed), values)

    def test_masked_fit_ignores_missing(self, rng):
        values = np.zeros((100, 2))
        values[:50] = 10.0
        mask = np.zeros_like(values, dtype=bool)
        mask[:50] = True
        scaler = StandardScaler().fit(values, mask)
        assert scaler.mean_ == pytest.approx(10.0)

    def test_zero_variance_guard(self):
        scaler = StandardScaler().fit(np.full((10, 2), 3.0))
        assert scaler.std_ == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros(3))

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((5, 5)), np.zeros((5, 5), dtype=bool))
