"""Tests for the request-oriented serving stack.

Covers the four layers of the refactor:

* the stateless backends (raw-array imputation, short-request padding, and
  the **wrapper equivalence** acceptance criterion: ``impute(dataset,
  segment)`` through the backend is bit-identical to the pre-refactor code
  path, in float32 and float64),
* the ``name@version`` :class:`~repro.serving.ModelRegistry` with its LRU,
* the :class:`~repro.serving.ImputationService` micro-batcher (the
  **bit-identical to served-alone** acceptance criterion, size/deadline
  triggers, error propagation, heterogeneous windows, worker thread), and
* the :class:`~repro.serving.StreamingImputer` ring-buffer sessions, and
* the service error paths the HTTP gateway leans on (concurrent ticket
  fetches, submit-after-stop, stopped executor pools, the stop/drain
  contract) plus streaming replay equivalence over the gateway endpoints
  (the protocol itself is covered in ``tests/test_gateway.py``).
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import (
    ImputationRequest,
    ImputationService,
    ModelRegistry,
    PriSTI,
    PriSTIConfig,
    StreamingImputer,
    WorkerPool,
)
from repro.baselines import BRITSImputer
from repro.data import SlidingWindowBuffer
from repro.serving import PoolStopped, RegistryError
from repro.serving.gateway import Gateway, InProcessClient, decode_array_payload


def _fast_config(**overrides):
    defaults = dict(window_length=12, epochs=1, iterations_per_epoch=1,
                    num_diffusion_steps=8, num_samples=3, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


@pytest.fixture(scope="module")
def trained_pristi(tiny_traffic_dataset):
    model = PriSTI(_fast_config())
    model.fit(tiny_traffic_dataset)
    return model


@pytest.fixture()
def registry(tmp_path, trained_pristi):
    registry = ModelRegistry(tmp_path / "models", max_loaded=2)
    registry.publish(trained_pristi, "traffic")
    return registry


def _test_arrays(dataset, start=0, length=12):
    values, observed, evaluation = dataset.segment("test")
    mask = observed & ~evaluation
    return values[start:start + length], mask[start:start + length]


# ----------------------------------------------------------------------
# Wrapper equivalence: impute(dataset, segment) == pre-refactor path
# ----------------------------------------------------------------------
def _legacy_impute(model, dataset, segment="test", num_samples=3, stride=None,
                   batched=True):
    """The pre-backend ``ConditionalDiffusionImputer.impute`` body, inlined
    verbatim: any numeric drift in the refactored wrapper shows up as a
    bitwise mismatch against this reference."""
    values, observed_mask, eval_mask = dataset.segment(segment)
    input_mask = observed_mask & ~eval_mask
    window = model.config.window_length
    stride = stride or window
    engine = model.inference_engine()

    model.network.eval()
    samples_scaled = engine.impute_segment(
        model.scaler.transform(values), input_mask,
        window_length=window, stride=stride, num_samples=num_samples,
        build_condition=model.build_condition, batched=batched,
    )
    samples = model.scaler.inverse_transform(samples_scaled)
    samples = np.where(input_mask[None], values[None], samples)
    median = np.median(samples, axis=0)
    model.network.train()
    return median, samples


class TestWrapperEquivalence:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("stride", [None, 5])
    def test_impute_bit_identical_to_pre_refactor(self, tiny_traffic_dataset,
                                                  dtype, stride):
        model = PriSTI(_fast_config(dtype=dtype))
        model.fit(tiny_traffic_dataset)

        model.diffusion.rng = np.random.default_rng(123)
        reference_median, reference_samples = _legacy_impute(
            model, tiny_traffic_dataset, num_samples=3, stride=stride)

        model.diffusion.rng = np.random.default_rng(123)
        result = model.impute(tiny_traffic_dataset, segment="test",
                              num_samples=3, stride=stride)

        assert np.array_equal(result.samples, reference_samples)
        assert np.array_equal(result.median, reference_median)

    def test_serial_fallback_also_bit_identical(self, trained_pristi,
                                                tiny_traffic_dataset):
        model = trained_pristi
        model.diffusion.rng = np.random.default_rng(7)
        reference_median, reference_samples = _legacy_impute(
            model, tiny_traffic_dataset, num_samples=2, batched=False)
        model.diffusion.rng = np.random.default_rng(7)
        result = model.impute(tiny_traffic_dataset, segment="test",
                              num_samples=2, batched=False)
        assert np.array_equal(result.samples, reference_samples)
        assert np.array_equal(result.median, reference_median)


# ----------------------------------------------------------------------
# Stateless backend over raw arrays
# ----------------------------------------------------------------------
class TestBackend:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            PriSTI(_fast_config()).backend()

    def test_raw_arrays_no_dataset_needed(self, trained_pristi, tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset)
        raw = trained_pristi.backend().impute_arrays(values, mask,
                                                     num_samples=2, rng=0)
        assert raw.samples.shape == (2,) + values.shape
        assert raw.median.shape == values.shape
        # Observed entries pass through; everything is finite.
        assert np.array_equal(raw.median[mask], values[mask])
        assert np.all(np.isfinite(raw.samples))

    @pytest.mark.parametrize("length", [1, 5, 11])
    def test_short_requests_padded_and_cropped(self, trained_pristi,
                                               tiny_traffic_dataset, length):
        """Requests shorter than the trained window are served (mask-padded
        internally) and the output is cropped back to the request length."""
        values, mask = _test_arrays(tiny_traffic_dataset, length=length)
        raw = trained_pristi.backend().impute_arrays(values, mask,
                                                     num_samples=2, rng=1)
        assert raw.median.shape == (length, values.shape[1])
        assert raw.samples.shape == (2, length, values.shape[1])
        assert np.array_equal(raw.median[mask], values[mask])

    def test_long_request_strided_windows(self, trained_pristi, tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset, length=20)
        raw = trained_pristi.backend().impute_arrays(values, mask,
                                                     num_samples=2, rng=2, stride=4)
        assert raw.median.shape == values.shape
        assert np.all(np.isfinite(raw.samples))

    def test_per_request_rng_reproducible(self, trained_pristi, tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset)
        backend = trained_pristi.backend()
        first = backend.impute_arrays(values, mask, num_samples=2, rng=42)
        second = backend.impute_arrays(values, mask, num_samples=2, rng=42)
        assert np.array_equal(first.samples, second.samples)

    def test_bad_requests_rejected(self, trained_pristi):
        backend = trained_pristi.backend()
        with pytest.raises(ValueError, match="time, node"):
            backend.impute_arrays(np.zeros(5))
        with pytest.raises(ValueError, match="same shape"):
            backend.impute_arrays(np.zeros((5, 3)), np.ones((4, 3), dtype=bool))

    def test_nan_values_count_as_missing(self, trained_pristi, tiny_traffic_dataset):
        """NaN readings with no explicit mask must be imputed, not echoed."""
        values, mask = _test_arrays(tiny_traffic_dataset)
        noisy = np.where(mask, values, np.nan)          # NaN marks the gaps
        raw = trained_pristi.backend().impute_arrays(noisy, num_samples=2, rng=3)
        assert np.all(np.isfinite(raw.median))
        assert np.all(np.isfinite(raw.samples))
        assert np.array_equal(raw.observed_mask, mask)
        assert np.array_equal(raw.median[mask], values[mask])

    def test_windowed_backend_raw_arrays(self, tiny_traffic_dataset):
        model = BRITSImputer(window_length=8, epochs=1, iterations_per_epoch=1)
        model.fit(tiny_traffic_dataset)
        values, mask = _test_arrays(tiny_traffic_dataset, length=10)
        raw = model.backend().impute_arrays(values, mask)
        assert raw.median.shape == values.shape
        assert np.array_equal(raw.median[mask], values[mask])

    @pytest.mark.parametrize("length", [1, 5])
    def test_windowed_backend_short_requests_padded(self, tiny_traffic_dataset,
                                                    length):
        """Short requests work even for decoders that emit a fixed window
        (the VAE family) — the backend pads to the window and crops."""
        from repro.baselines import VRINImputer

        model = VRINImputer(window_length=8, epochs=1, iterations_per_epoch=1)
        model.fit(tiny_traffic_dataset)
        values, mask = _test_arrays(tiny_traffic_dataset, length=length)
        raw = model.backend().impute_arrays(values, mask, num_samples=2)
        assert raw.median.shape == (length, values.shape[1])
        assert np.array_equal(raw.median[mask], values[mask])

    def test_windowed_impute_unchanged_by_backend_split(self, tiny_traffic_dataset):
        """The windowed family's impute() wrapper reproduces itself exactly
        (deterministic reconstruction → repeated calls must agree)."""
        model = BRITSImputer(window_length=8, epochs=1, iterations_per_epoch=1)
        model.fit(tiny_traffic_dataset)
        first = model.impute(tiny_traffic_dataset, segment="test")
        second = model.impute(tiny_traffic_dataset, segment="test")
        assert np.array_equal(first.samples, second.samples)


# ----------------------------------------------------------------------
# Model registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_publish_auto_versions_and_latest(self, registry, trained_pristi):
        second = registry.publish(trained_pristi, "traffic")
        assert second.spec == "traffic@2"
        assert registry.versions("traffic") == ["1", "2"]
        assert registry.resolve("traffic").version == "2"       # latest wins
        assert registry.resolve("traffic@1").version == "1"

    def test_load_round_trip_serves_identically(self, registry, trained_pristi,
                                                tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset)
        loaded = registry.load("traffic@1")
        ours = trained_pristi.backend().impute_arrays(values, mask,
                                                      num_samples=2, rng=9)
        theirs = loaded.backend().impute_arrays(values, mask,
                                                num_samples=2, rng=9)
        assert np.array_equal(ours.samples, theirs.samples)

    def test_lru_hits_and_evictions(self, registry, trained_pristi):
        registry.publish(trained_pristi, "traffic")             # @2
        registry.publish(trained_pristi, "aqi")                 # second name
        first = registry.load("traffic@1")
        assert registry.load("traffic@1") is first              # LRU hit
        registry.load("traffic@2")                              # fills capacity (2)
        registry.load("aqi")                                    # evicts traffic@1
        assert registry.stats()["evictions"] == 1
        assert "traffic@1" not in registry.loaded
        reloaded = registry.load("traffic@1")                   # transparent reload
        assert reloaded is not first

    def test_unknown_specs_rejected(self, registry):
        with pytest.raises(RegistryError, match="no model named"):
            registry.resolve("nope")
        with pytest.raises(RegistryError, match="no version"):
            registry.resolve("traffic@99")
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.resolve("../escape")

    def test_publish_rejects_unsafe_components(self, registry, trained_pristi):
        with pytest.raises(RegistryError):
            registry.publish(trained_pristi, "bad/name")
        with pytest.raises(RegistryError):
            registry.publish(trained_pristi, "ok", version="v 1")


# ----------------------------------------------------------------------
# Micro-batching service
# ----------------------------------------------------------------------
class TestImputationService:
    def test_microbatched_bit_identical_to_served_alone(self, registry,
                                                        tiny_traffic_dataset):
        """Acceptance criterion: a coalesced response equals the same request
        served alone, bit for bit — micro-batching is invisible."""
        service = ImputationService(registry, max_batch_requests=16)
        requests = [
            ImputationRequest("traffic", *_test_arrays(tiny_traffic_dataset, start=i),
                              num_samples=2, seed=100 + i)
            for i in range(5)
        ]
        tickets = [service.submit(request) for request in requests]
        assert service.pending() == 5
        service.flush()
        batched = [ticket.result() for ticket in tickets]
        assert all(response.batch_requests == 5 for response in batched)

        alone = [service.serve(request) for request in requests]
        for together, solo in zip(batched, alone):
            assert solo.batch_requests == 1
            assert np.array_equal(together.samples, solo.samples)
            assert np.array_equal(together.median, solo.median)

    def test_heterogeneous_window_lengths_coalesce(self, registry,
                                                   tiny_traffic_dataset):
        """One flush may mix request lengths: the engine groups by shape."""
        service = ImputationService(registry, max_batch_requests=16)
        requests = [
            ImputationRequest("traffic", *_test_arrays(tiny_traffic_dataset, length=length),
                              num_samples=2, seed=length)
            for length in (6, 12, 12, 18)
        ]
        tickets = [service.submit(request) for request in requests]
        service.flush()
        batched = [ticket.result() for ticket in tickets]
        for request, response in zip(requests, batched):
            assert response.median.shape == request.values.shape
            solo = service.serve(request)
            assert np.array_equal(response.samples, solo.samples)

    def test_size_trigger_flushes_automatically(self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_batch_requests=3)
        values, mask = _test_arrays(tiny_traffic_dataset)
        tickets = [
            service.submit(ImputationRequest("traffic", values, mask, seed=i))
            for i in range(3)
        ]
        # The third submit crossed the size threshold: served without flush().
        assert service.pending() == 0
        assert all(ticket.done for ticket in tickets)
        assert tickets[0].result().batch_requests == 3

    def test_deadline_trigger_via_poll(self, registry, tiny_traffic_dataset):
        now = [0.0]
        service = ImputationService(registry, max_batch_requests=100,
                                    max_delay_seconds=0.5, clock=lambda: now[0])
        values, mask = _test_arrays(tiny_traffic_dataset)
        ticket = service.submit(ImputationRequest("traffic", values, mask, seed=1))
        assert service.poll() == 0          # deadline not reached: still queued
        assert service.pending() == 1
        now[0] = 0.6
        assert service.poll() == 1          # deadline passed: flushed
        assert ticket.done

    def test_result_drives_flush_without_worker(self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_batch_requests=100)
        values, mask = _test_arrays(tiny_traffic_dataset)
        ticket = service.submit(ImputationRequest("traffic", values, mask, seed=1))
        response = ticket.result()          # no flush()/poll(): result() drives
        assert response.batch_requests == 1
        assert response.model == "traffic@1"

    def test_stats_carry_compiled_counters(self, registry, tiny_traffic_dataset):
        """``service.stats()`` exposes the process-wide trace-cache counters
        (the additive ``compiled`` key behind the gateway's ``/v1/stats``),
        and served traffic actually rides the compiled path."""
        from repro.inference import reset_compiled_counters

        service = ImputationService(registry, max_batch_requests=4)
        reset_compiled_counters()
        values, mask = _test_arrays(tiny_traffic_dataset)
        service.serve(ImputationRequest("traffic", values, mask,
                                        num_samples=2, seed=5))
        compiled = service.stats()["compiled"]
        for key in ("trace_cache_hits", "trace_cache_misses",
                    "fallback_count", "compiled_programs", "evictions"):
            assert key in compiled
        # First chunk of the signature traces (or replays an earlier
        # program); either way the compiled machinery was consulted.
        assert compiled["trace_cache_misses"] + compiled["trace_cache_hits"] >= 1
        assert compiled["fallback_count"] == 0

    def test_unknown_model_fails_at_submit(self, registry, tiny_traffic_dataset):
        service = ImputationService(registry)
        values, mask = _test_arrays(tiny_traffic_dataset)
        with pytest.raises(RegistryError):
            service.submit(ImputationRequest("missing", values, mask))

    def test_malformed_request_error_reaches_ticket(self, registry):
        service = ImputationService(registry, max_batch_requests=100)
        bad = ImputationRequest("traffic", np.zeros((12, 99)), None, seed=0)
        ticket = service.submit(bad)
        with pytest.raises(Exception):
            service.flush()
        with pytest.raises(Exception):
            ticket.result()

    def test_one_failing_batch_does_not_strand_others(self, registry,
                                                      trained_pristi,
                                                      tiny_traffic_dataset):
        """A flush covering several models must serve the healthy queues even
        when an earlier batch raises — their entries are already popped, so
        skipping them would hang their tickets forever."""
        registry.publish(trained_pristi, "second")
        service = ImputationService(registry, max_batch_requests=100)
        values, mask = _test_arrays(tiny_traffic_dataset)
        bad = service.submit(            # wrong node count: this batch fails
            ImputationRequest("traffic", np.zeros((12, 99)), None, seed=0))
        good = service.submit(
            ImputationRequest("second", values, mask, num_samples=2, seed=1))
        with pytest.raises(Exception):
            service.flush()              # first error re-raised after all batches
        assert good.done                 # the healthy batch was still served
        assert good.result().median.shape == values.shape
        with pytest.raises(Exception):
            bad.result()

    def test_invalid_num_samples_rejected_clearly(self, trained_pristi,
                                                  tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset)
        backend = trained_pristi.backend()
        for bad in (0, -1):
            with pytest.raises(ValueError, match="num_samples"):
                backend.impute_arrays(values, mask, num_samples=bad, rng=0)

    def test_worker_thread_serves_by_deadline(self, registry, tiny_traffic_dataset):
        values, mask = _test_arrays(tiny_traffic_dataset)
        with ImputationService(registry, max_batch_requests=100,
                               max_delay_seconds=0.01) as service:
            tickets = [
                service.submit(ImputationRequest("traffic", values, mask, seed=i))
                for i in range(3)
            ]
            responses = [ticket.result(timeout=30) for ticket in tickets]
        assert [response.batch_requests for response in responses] == [3, 3, 3]
        assert service.pending() == 0

    def test_unseeded_requests_get_independent_streams(self, registry,
                                                       tiny_traffic_dataset):
        service = ImputationService(registry, max_batch_requests=100, seed=0)
        values, mask = _test_arrays(tiny_traffic_dataset)
        tickets = [service.submit(ImputationRequest("traffic", values, mask))
                   for _ in range(2)]
        service.flush()
        first, second = (ticket.result() for ticket in tickets)
        # Same payload, distinct spawned streams: samples must differ.
        assert not np.array_equal(first.samples, second.samples)

    def test_windowed_models_served_through_same_queue(self, registry,
                                                       tiny_traffic_dataset):
        model = BRITSImputer(window_length=8, epochs=1, iterations_per_epoch=1)
        model.fit(tiny_traffic_dataset)
        registry.publish(model, "brits")
        service = ImputationService(registry, max_batch_requests=4)
        values, mask = _test_arrays(tiny_traffic_dataset, length=10)
        ticket = service.submit(ImputationRequest("brits", values, mask))
        response = ticket.result()
        assert response.median.shape == values.shape
        # Observed entries pass through, so scoring against them is exact.
        assert response.metrics(values, mask)["mae"] == pytest.approx(0.0)

    def test_response_metrics_use_shared_implementation(self, registry,
                                                        tiny_traffic_dataset):
        from repro.metrics import imputation_metrics

        service = ImputationService(registry)
        values, mask = _test_arrays(tiny_traffic_dataset)
        response = service.serve(ImputationRequest("traffic", values, mask,
                                                   num_samples=2, seed=3))
        expected = imputation_metrics(response.median, response.samples,
                                      values, mask)
        assert response.metrics(values, mask) == expected

    def test_unseeded_serve_not_pinned_to_one_stream(self, registry,
                                                     tiny_traffic_dataset):
        """serve() spawns a fresh stream per unseeded call — repeated calls
        must not replay identical 'posterior samples'."""
        service = ImputationService(registry)
        values, mask = _test_arrays(tiny_traffic_dataset)
        request = ImputationRequest("traffic", values, mask, num_samples=2)
        first = service.serve(request)
        second = service.serve(request)
        assert not np.array_equal(first.samples, second.samples)


# ----------------------------------------------------------------------
# Ring buffer + streaming sessions
# ----------------------------------------------------------------------
class TestSlidingWindowBuffer:
    def test_chronological_after_wraparound(self):
        buffer = SlidingWindowBuffer(3, 2)
        for tick in range(5):
            buffer.push([float(tick), float(10 + tick)])
        values, mask = buffer.window()
        assert np.array_equal(values[:, 0], [2.0, 3.0, 4.0])    # oldest first
        assert np.all(mask)
        assert buffer.start == 2 and buffer.total_pushed == 5
        assert len(buffer) == 3 and buffer.full

    def test_nan_marks_missing(self):
        buffer = SlidingWindowBuffer(2, 3)
        buffer.push([1.0, np.nan, 3.0])
        values, mask = buffer.window()
        assert np.array_equal(mask, [[True, False, True]])
        assert values[0, 1] == 0.0                              # stored as zero

    def test_explicit_mask_intersects_finiteness(self):
        buffer = SlidingWindowBuffer(2, 2)
        buffer.push([1.0, np.nan], mask=[True, True])
        _, mask = buffer.window()
        assert np.array_equal(mask, [[True, False]])

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowBuffer(0, 2)
        buffer = SlidingWindowBuffer(2, 2)
        with pytest.raises(ValueError, match="shape"):
            buffer.push([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="empty"):
            buffer.window()


class TestStreamingImputer:
    def _stream_ticks(self, dataset, count=18):
        values, observed, evaluation = dataset.segment("test")
        mask = observed & ~evaluation
        return [np.where(mask[t], values[t], np.nan) for t in range(count)]

    def test_emits_incrementally_from_first_tick(self, trained_pristi,
                                                 tiny_traffic_dataset):
        stream = StreamingImputer(trained_pristi.backend(), num_nodes=6,
                                  num_samples=2, seed=11)
        ticks = self._stream_ticks(tiny_traffic_dataset)
        updates = [stream.push(tick) for tick in ticks]
        assert all(update is not None for update in updates)     # warm from tick 0
        window = trained_pristi.config.window_length
        for index, update in enumerate(updates):
            assert update.tick == index
            assert update.median.shape[0] == min(index + 1, window)
            assert update.new_median.shape[0] == 1               # one new tick each
            assert np.all(np.isfinite(update.median))

    def test_emit_stride_and_min_history(self, trained_pristi, tiny_traffic_dataset):
        stream = StreamingImputer(trained_pristi.backend(), num_nodes=6,
                                  num_samples=1, emit_stride=4, min_history=6, seed=1)
        ticks = self._stream_ticks(tiny_traffic_dataset, count=16)
        updates = [stream.push(tick) for tick in ticks]
        emitted = [index for index, update in enumerate(updates) if update is not None]
        assert emitted == [7, 11, 15]       # warm at 6 ticks, then every 4th
        # Catch-up emission covers all ticks since the previous one.
        assert updates[11].new_median.shape[0] == 4

    def test_query_hits_condition_cache(self, trained_pristi, tiny_traffic_dataset):
        stream = StreamingImputer(trained_pristi.backend(), num_nodes=6,
                                  num_samples=1, seed=2)
        stream.push(self._stream_ticks(tiny_traffic_dataset)[0])
        assert stream.condition_cache_misses == 1
        update = stream.query()                       # same window, no new tick
        assert update.condition_cached
        assert stream.condition_cache_hits == 1
        assert update.new_median.shape[0] == 0        # nothing new to emit

    def test_replayed_stream_reproduces_imputations(self, trained_pristi,
                                                    tiny_traffic_dataset):
        ticks = self._stream_ticks(tiny_traffic_dataset)

        def run():
            stream = StreamingImputer(trained_pristi.backend(), num_nodes=6,
                                      num_samples=2, seed=33)
            return [stream.push(tick) for tick in ticks]

        first, second = run(), run()
        for a, b in zip(first, second):
            assert np.array_equal(a.samples, b.samples)
            assert np.array_equal(a.median, b.median)

    def test_observed_ticks_pass_through(self, trained_pristi, tiny_traffic_dataset):
        stream = StreamingImputer(trained_pristi.backend(), num_nodes=6, seed=4)
        values, observed, evaluation = tiny_traffic_dataset.segment("test")
        mask = observed & ~evaluation
        update = None
        for t in range(14):
            update = stream.push(np.where(mask[t], values[t], np.nan))
        window = trained_pristi.config.window_length
        window_values = values[14 - window:14]
        window_mask = mask[14 - window:14]
        assert np.array_equal(update.median[window_mask], window_values[window_mask])

    def test_query_before_warm_raises(self, trained_pristi):
        stream = StreamingImputer(trained_pristi.backend(), num_nodes=6,
                                  min_history=3)
        with pytest.raises(RuntimeError, match="tick"):
            stream.query()


# ----------------------------------------------------------------------
# Serving error paths exercised by the gateway
# ----------------------------------------------------------------------
class TestServiceErrorPaths:
    def test_concurrent_result_calls_share_one_response(self, registry,
                                                        tiny_traffic_dataset):
        """Many callers blocking on the same ticket all get the same object —
        the gateway's ``?timeout=`` fetch and a second client polling the
        ticket race exactly like this."""
        service = ImputationService(registry, max_batch_requests=100,
                                    max_delay_seconds=10.0)
        values, mask = _test_arrays(tiny_traffic_dataset)
        ticket = service.submit(
            ImputationRequest("traffic", values, mask, num_samples=2, seed=9))
        outcomes = [None] * 4
        barrier = threading.Barrier(5)

        def fetch(slot):
            barrier.wait()
            outcomes[slot] = ticket.result(timeout=60)

        threads = [threading.Thread(target=fetch, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        barrier.wait()                      # all callers blocked, then flush
        service.flush()
        for thread in threads:
            thread.join()
        assert all(outcome is outcomes[0] for outcome in outcomes)
        assert np.all(np.isfinite(outcomes[0].median))

    def test_submit_after_stop_served_on_demand(self, registry,
                                                tiny_traffic_dataset):
        """``stop()`` ends the background worker, not the service: a later
        submit is still served (result() drives the flush) and stays
        bit-identical to the pre-stop response for the same seed."""
        service = ImputationService(registry, max_delay_seconds=0.005)
        service.start()
        values, mask = _test_arrays(tiny_traffic_dataset)
        request = ImputationRequest("traffic", values, mask, num_samples=2,
                                    seed=21)
        before = service.submit(request).result(timeout=60)
        service.stop()
        after = service.submit(request).result(timeout=60)
        assert np.array_equal(before.samples, after.samples)
        assert np.array_equal(before.median, after.median)

    def test_submit_against_stopped_pool_fails_ticket(self, registry,
                                                      tiny_traffic_dataset):
        """A stopped executor pool must surface on the ticket, not hang it."""
        pool = WorkerPool(num_workers=1)
        pool.stop()
        service = ImputationService(registry, max_batch_requests=100,
                                    executor=pool)
        values, mask = _test_arrays(tiny_traffic_dataset)
        ticket = service.submit(
            ImputationRequest("traffic", values, mask, seed=1))
        with pytest.raises(PoolStopped):
            service.flush()
        with pytest.raises(PoolStopped):
            ticket.result(timeout=5)

    def test_stop_resolves_inflight_before_returning(self, registry,
                                                     tiny_traffic_dataset):
        """The drain contract the gateway builds on: when ``stop()`` returns,
        every ticket issued before it is done."""
        service = ImputationService(registry, max_batch_requests=100,
                                    max_delay_seconds=10.0)
        service.start()
        values, mask = _test_arrays(tiny_traffic_dataset)
        tickets = [
            service.submit(ImputationRequest("traffic", values, mask, seed=i))
            for i in range(4)
        ]
        assert service.pending() == 4       # deadline far away: all queued
        service.stop()
        assert all(ticket.done for ticket in tickets)
        assert all(ticket.result().batch_requests == 4 for ticket in tickets)


# ----------------------------------------------------------------------
# StreamingImputer over the gateway: HTTP replay == direct session
# ----------------------------------------------------------------------
class TestStreamingOverGateway:
    def _ticks(self, dataset, count=14):
        values, observed, evaluation = dataset.segment("test")
        mask = observed & ~evaluation
        return [np.where(mask[t], values[t], np.nan) for t in range(count)]

    def _replay_over_http(self, registry, ticks, **session_options):
        """Open a gateway streaming session and push every tick over HTTP;
        returns the decoded per-tick payloads."""
        service = ImputationService(registry)
        gateway = Gateway(service)
        client = InProcessClient(gateway)
        try:
            async def go():
                document = {"model": "traffic", "num_nodes": ticks[0].shape[0]}
                document.update(session_options)
                opened = await client.request(
                    "POST", "/v1/stream", body=json.dumps(document).encode())
                assert opened.status == 201
                session = opened.json()["session"]
                updates = []
                for tick in ticks:
                    body = json.dumps({"values": [
                        None if value != value else float(value)
                        for value in tick]}).encode()
                    response = await client.request(
                        "POST", f"/v1/stream/{session}/tick", body=body)
                    assert response.status == 200
                    updates.append(decode_array_payload(
                        response.content_type, response.body))
                return updates

            return asyncio.run(go())
        finally:
            service.stop()

    def test_http_replay_bit_identical_to_direct_session(self, registry,
                                                         tiny_traffic_dataset):
        """Satellite acceptance: a tick sequence replayed through the HTTP
        endpoints produces the same emissions, bit for bit, as the same
        session driven in process."""
        ticks = self._ticks(tiny_traffic_dataset)
        backend = registry.backend(registry.resolve("traffic"))
        direct = StreamingImputer(backend, num_nodes=6, num_samples=2, seed=33)
        direct_updates = [direct.push(tick) for tick in ticks]

        http_updates = self._replay_over_http(registry, ticks,
                                              num_samples=2, seed=33)
        assert len(http_updates) == len(direct_updates)
        for reference, over_http in zip(direct_updates, http_updates):
            assert over_http["emitted"] is True
            assert over_http["tick"] == reference.tick
            assert np.array_equal(over_http["samples"], reference.samples)
            assert np.array_equal(over_http["median"], reference.median)
            assert np.array_equal(over_http["new_median"], reference.new_median)

    def test_http_replay_respects_stride_and_history(self, registry,
                                                     tiny_traffic_dataset):
        """Emission schedule (min_history warm-up, emit_stride cadence) is
        identical over HTTP, including the catch-up rows of each emission."""
        ticks = self._ticks(tiny_traffic_dataset, count=16)
        backend = registry.backend(registry.resolve("traffic"))
        direct = StreamingImputer(backend, num_nodes=6, num_samples=1,
                                  emit_stride=4, min_history=6, seed=1)
        direct_updates = [direct.push(tick) for tick in ticks]

        http_updates = self._replay_over_http(registry, ticks, num_samples=1,
                                              emit_stride=4, min_history=6,
                                              seed=1)
        assert ([update["emitted"] for update in http_updates]
                == [update is not None for update in direct_updates])
        for reference, over_http in zip(direct_updates, http_updates):
            if reference is None:
                continue
            assert over_http["new_median"].shape == reference.new_median.shape
            assert np.array_equal(over_http["samples"], reference.samples)
            assert np.array_equal(over_http["new_median"], reference.new_median)
