"""Tests for the zero-copy shared-memory worker transport.

Two tiers:

* **Arena units** — slot allocation/refcounting, idempotent release,
  overflow-segment retirement, partial-staging cleanup, the rebuild-on-
  failed-detach path, and a full in-process descriptor round trip.
* **Pool lifecycle** — the zero-leak invariant over real process workers:
  every shared-memory segment a pool ever created is provably unlinked
  after clean drain, hard stop (``drain=False``), a seeded fault storm
  over the transport injection points, and a retry-after-transport-crash —
  with responses still bit-identical to serve-alone.  Plus warm pre-fork
  (publish → workers pre-load) and idle-pool batch splitting.
"""

import threading

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro import (
    ImputationRequest,
    ImputationService,
    ModelRegistry,
    PriSTI,
    PriSTIConfig,
    RetryPolicy,
    WorkerPool,
)
from repro.serving import PoolStopped, TransportError, faults
from repro.serving.errors import ServingError
from repro.serving.pool import RequestPayload
from repro.serving.transport import SegmentAttachments, ShmArena, decode_batch


def _fast_config(**overrides):
    defaults = dict(window_length=10, epochs=1, iterations_per_epoch=1,
                    num_diffusion_steps=6, num_samples=2, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


@pytest.fixture(scope="module")
def trained_model(tiny_traffic_dataset):
    return PriSTI(_fast_config()).fit(tiny_traffic_dataset)


@pytest.fixture()
def registry(tmp_path, trained_model):
    registry = ModelRegistry(tmp_path / "models", max_loaded=4)
    registry.publish(trained_model, "traffic")
    return registry


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.uninstall()
    yield
    faults.uninstall()


def _requests(dataset, model="traffic", count=4, length=10, num_samples=2):
    values, observed, evaluation = dataset.segment("test")
    mask = observed & ~evaluation
    return [
        ImputationRequest(model=model, values=values[s:s + length],
                          observed_mask=mask[s:s + length],
                          num_samples=num_samples, seed=100 + s)
        for s in range(count)
    ]


def _payloads(count=2, time_steps=6, nodes=3, num_samples=2):
    rng = np.random.default_rng(17)
    return [
        RequestPayload(values=rng.normal(size=(time_steps, nodes)),
                       observed_mask=rng.random((time_steps, nodes)) > 0.3,
                       num_samples=num_samples,
                       rng=np.random.default_rng(100 + index), stride=None)
        for index in range(count)
    ]


def _assert_zero_leak(transport):
    """The invariant every lifecycle path must land on."""
    assert transport["segments_active"] == 0
    assert transport["live_slots"] == 0
    assert transport["segments_created"] == transport["segments_unlinked"]


def _assert_names_unlinked(names):
    """Attach-probe retired segments by name: they must be gone from the OS."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Arena units
# ----------------------------------------------------------------------
class TestShmArena:
    def test_stage_release_refcounts_and_is_idempotent(self):
        arena = ShmArena()
        staged = arena.stage(_payloads(count=3))
        stats = arena.stats()
        # 4 tensors per payload: values, mask, median slot, samples slot.
        assert stats["live_slots"] == 12
        assert stats["batches_staged"] == 1
        assert stats["shm_bytes_staged"] == staged.nbytes > 0
        staged.release()
        assert arena.stats()["live_slots"] == 0
        staged.release()                       # idempotent: no double free
        assert arena.stats()["live_slots"] == 0
        names = arena.segment_names()
        arena.destroy()
        transport = arena.stats()
        _assert_zero_leak(transport)
        _assert_names_unlinked(names)
        arena.destroy()                        # destroy is idempotent too
        with pytest.raises(TransportError):
            arena.stage(_payloads(count=1))    # a destroyed arena stays dead

    def test_overflow_segments_retire_on_release(self):
        # Segments far smaller than one batch force per-batch overflow
        # segments; they must unlink as soon as their slots drain while the
        # primary stays mapped for reuse.
        arena = ShmArena(segment_bytes=4096)
        staged = arena.stage(_payloads(count=2, time_steps=32, nodes=8,
                                       num_samples=4))
        created = arena.stats()["segments_created"]
        assert created > 1
        staged.release()
        stats = arena.stats()
        assert stats["segments_active"] == 1           # only the primary
        assert stats["segments_unlinked"] == created - 1
        arena.destroy()
        _assert_zero_leak(arena.stats())

    def test_partial_staging_failure_frees_staged_slots(self):
        arena = ShmArena()
        bad = _payloads(count=2)
        bad[1].values = np.zeros((2, 3, 4))            # not a (time, node) array
        with pytest.raises(ValueError):
            arena.stage(bad)
        assert arena.stats()["live_slots"] == 0        # payload 0 reclaimed
        arena.destroy()
        _assert_zero_leak(arena.stats())

    def test_stage_fault_fires_before_any_allocation(self):
        arena = ShmArena()
        with faults.active([{"point": "transport.stage", "hits": [1]}]):
            with pytest.raises(TransportError):
                arena.stage(_payloads(count=1))
        assert arena.stats()["live_slots"] == 0
        assert arena.stats()["segments_created"] == 0
        arena.destroy()

    def test_failed_detach_rebuilds_instead_of_leaking(self):
        arena = ShmArena()
        staged = arena.stage(_payloads(count=1))
        names = arena.segment_names()
        with faults.active([{"point": "transport.shm_detach", "hits": [1]}]):
            staged.release()
        stats = arena.stats()
        assert stats["rebuilds"] == 1
        assert stats["segments_active"] == 0           # everything torn down
        assert stats["segments_created"] == stats["segments_unlinked"]
        _assert_names_unlinked(names)
        # The arena keeps working after a rebuild: fresh segments, clean free.
        staged = arena.stage(_payloads(count=1))
        staged.release()
        assert arena.stats()["live_slots"] == 0
        arena.destroy()
        _assert_zero_leak(arena.stats())

    def test_descriptor_round_trip_preserves_bits(self):
        """Stage → attach → decode → compute-in-place → read_responses, all
        in one process: the exact data path the worker pair runs, minus the
        pipe.  Bits must survive both directions."""
        arena = ShmArena()
        payloads = _payloads(count=2, time_steps=5, nodes=4, num_samples=3)
        staged = arena.stage(payloads)
        attachments = SegmentAttachments()
        try:
            decoded, response_views = decode_batch(staged.descriptors(),
                                                   attachments)
            for original, copy in zip(payloads, decoded):
                finite = np.where(np.asarray(original.observed_mask, bool),
                                  np.asarray(original.values, np.float64), 0.0)
                assert np.array_equal(copy.values, finite)
                assert copy.values.dtype == np.float64
                assert copy.observed_mask.dtype == np.bool_
                assert copy.num_samples == original.num_samples
            rng = np.random.default_rng(5)
            written = []
            for median_view, samples_view in response_views:
                median_view[...] = rng.normal(size=median_view.shape)
                samples_view[...] = rng.normal(size=samples_view.shape)
                written.append((median_view.copy(), samples_view.copy()))
            raws = staged.read_responses()
            for raw, (median, samples) in zip(raws, written):
                assert np.array_equal(raw.median, median)
                assert np.array_equal(raw.samples, samples)
            # read_responses copies out: releasing must not corrupt them.
            del response_views
        finally:
            attachments.close()
        staged.release()
        marker = raws[0].median.copy()
        arena.destroy()
        assert np.array_equal(raws[0].median, marker)
        _assert_zero_leak(arena.stats())


# ----------------------------------------------------------------------
# Pool lifecycle: the zero-leak invariant
# ----------------------------------------------------------------------
class TestPoolTransportLifecycle:
    def _serve(self, registry, dataset, pool, count=4, **service_kwargs):
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool, **service_kwargs)
        tickets = [service.submit(request)
                   for request in _requests(dataset, count=count)]
        service.flush()
        return tickets

    def test_clean_drain_unlinks_every_segment(self, registry,
                                               tiny_traffic_dataset):
        pool = WorkerPool(num_workers=2, mode="process")
        with pool:
            tickets = self._serve(registry, tiny_traffic_dataset, pool)
            for ticket in tickets:
                ticket.result(timeout=120)
            live = [name for process in pool._processes if process is not None
                    for name in process.arena.segment_names()]
            assert live                       # the transport really ran on shm
        transport = pool.transport_stats()
        assert transport["batches_staged"] > 0
        assert transport["shm_bytes_staged"] > 0
        _assert_zero_leak(transport)
        _assert_names_unlinked(live)

    def test_child_compile_counters_fold_into_parent(self, registry,
                                                     tiny_traffic_dataset):
        """Batch replies carry the child's cumulative compile counters and
        the parent folds the deltas, so ``compiled_counters()`` (and with it
        ``service.stats()['compiled']``) covers process-mode inference."""
        from repro.inference import compiled_counters, reset_compiled_counters

        reset_compiled_counters()
        pool = WorkerPool(num_workers=1, mode="process")
        with pool:
            tickets = self._serve(registry, tiny_traffic_dataset, pool,
                                  count=2)
            for ticket in tickets:
                ticket.result(timeout=120)
        counters = compiled_counters()
        assert counters["trace_cache_misses"] >= 1, counters
        assert counters["compiled_programs"] >= 1, counters
        assert counters["fallback_count"] == 0, counters

    def test_hard_stop_unlinks_every_segment(self, registry,
                                             tiny_traffic_dataset):
        pool = WorkerPool(num_workers=1, mode="process")
        with pool:
            # Warm batch spawns the child and its arena.
            warm = self._serve(registry, tiny_traffic_dataset, pool, count=1)
            for ticket in warm:
                ticket.result(timeout=120)
        # Re-start, queue work, then stop without draining: queued batches
        # fail with PoolStopped and the arena still tears down completely.
        pool.start()
        tickets = self._serve(registry, tiny_traffic_dataset, pool, count=3)
        pool.stop(drain=False)
        for ticket in tickets:
            try:
                ticket.result(timeout=120)
            except (PoolStopped, ServingError):
                pass
        _assert_zero_leak(pool.transport_stats())

    def test_seeded_transport_storm_resolves_all_and_leaks_nothing(
            self, registry, tiny_traffic_dataset):
        """A pinned-seed storm across every transport injection point (plus
        worker crashes): all tickets resolve — a response or a typed
        ServingError — and zero segments leak."""
        plan = {
            "seed": 20230411,
            "rules": [
                {"point": "transport.stage", "probability": 0.25},
                {"point": "transport.shm_detach", "probability": 0.2},
                {"point": "pool.worker_crash", "probability": 0.15},
            ],
        }
        pool = WorkerPool(num_workers=2, mode="process")
        resolved = []
        with faults.active(plan):
            with pool:
                service = ImputationService(
                    registry, max_batch_requests=4, executor=pool,
                    retry_policy=RetryPolicy(max_attempts=3,
                                             base_delay_seconds=0.001))
                tickets = [service.submit(request) for request in
                           _requests(tiny_traffic_dataset, count=8)]
                service.flush()
                for ticket in tickets:
                    try:
                        resolved.append(ticket.result(timeout=120))
                    except ServingError as error:
                        resolved.append(error)
        assert len(resolved) == 8             # every ticket resolved, no hangs
        transport = pool.transport_stats()
        _assert_zero_leak(transport)

    def test_retry_after_transport_fault_is_bit_identical(
            self, registry, tiny_traffic_dataset):
        """First staging attempt fails; the retry re-stages fresh slots and
        the response still equals serve-alone bit for bit."""
        pool = WorkerPool(num_workers=1, mode="process")
        service = ImputationService(
            registry, max_batch_requests=64, executor=pool,
            retry_policy=RetryPolicy(max_attempts=3,
                                     base_delay_seconds=0.001))
        requests = _requests(tiny_traffic_dataset, count=2)
        with pool:
            alone = [service.serve(request) for request in requests]
            with faults.active([{"point": "transport.stage", "hits": [1]}]):
                tickets = [service.submit(request) for request in requests]
                service.flush()
                pooled = [ticket.result(timeout=120) for ticket in tickets]
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)
            assert np.array_equal(reference.median, response.median)
        _assert_zero_leak(pool.transport_stats())

    def test_crashed_child_reclaims_staged_slots(self, registry,
                                                 tiny_traffic_dataset):
        """A child killed mid-batch must not leak the batch's staged slots:
        the worker's arena is destroyed with the child and every segment
        unlinked, even though the batch never completed."""
        import multiprocessing

        pool = WorkerPool(num_workers=1, mode="process")
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, count=2)
        barrier = threading.Event()
        with pool:
            warm = [service.submit(request) for request in requests]
            service.flush()
            for ticket in warm:
                ticket.result(timeout=120)
            names_before = [name for process in pool._processes
                            if process is not None
                            for name in process.arena.segment_names()]
            assert names_before
            for child in multiprocessing.active_children():
                child.terminate()
                child.join(timeout=10.0)
            barrier.set()
            tickets = [service.submit(request) for request in requests]
            service.flush()
            for ticket in tickets:
                with pytest.raises(ServingError):
                    ticket.result(timeout=120)
            # The crashed worker's segments are gone *before* pool stop.
            _assert_names_unlinked(names_before)
        _assert_zero_leak(pool.transport_stats())

    def test_child_attach_fault_is_retried(self, registry,
                                           tiny_traffic_dataset,
                                           monkeypatch):
        """An attach failure inside the child (the segment cannot be mapped)
        surfaces as a retryable TransportError; the retry succeeds and the
        response is bit-identical to serve-alone."""
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            '{"rules": [{"point": "transport.shm_attach", "hits": [1]}]}')
        pool = WorkerPool(num_workers=1, mode="process")
        service = ImputationService(
            registry, max_batch_requests=64, executor=pool,
            retry_policy=RetryPolicy(max_attempts=3,
                                     base_delay_seconds=0.001))
        requests = _requests(tiny_traffic_dataset, count=2)
        with pool:
            alone = [service.serve(request) for request in requests]
            tickets = [service.submit(request) for request in requests]
            service.flush()
            pooled = [ticket.result(timeout=120) for ticket in tickets]
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)
        _assert_zero_leak(pool.transport_stats())


# ----------------------------------------------------------------------
# Warm pre-fork and batch splitting
# ----------------------------------------------------------------------
class TestWarmPrefork:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_publish_prewarms_every_worker(self, registry, trained_model,
                                           mode):
        pool = WorkerPool(num_workers=2, mode=mode)
        pool.watch(registry)
        with pool:
            resolved = registry.publish(trained_model, "warmtest")
            assert pool.wait_idle(timeout=120)
            stats = pool.stats()
            assert stats["warmed_models"] == 2      # one load per worker
            assert stats["warm_failures"] == 0
            assert all(seconds >= 0.0 for seconds in stats["warm_seconds"])
            assert resolved.spec == "warmtest@1"
            if mode == "process":
                # The children exist *before* the first request.
                assert all(process is not None
                           for process in pool._processes)
        if mode == "process":
            _assert_zero_leak(pool.transport_stats())

    def test_generation_rides_dispatch_to_worker_caches(
            self, registry, tiny_traffic_dataset):
        """Steady-state batches must not stat the artifact tree: the service
        stamps each batch with the registry generation and the worker cache
        skips the probe when it matches."""
        pool = WorkerPool(num_workers=1)         # thread mode: cache visible
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        with pool:
            for _ in range(3):
                tickets = [service.submit(request) for request in
                           _requests(tiny_traffic_dataset, count=2)]
                service.flush()
                for ticket in tickets:
                    ticket.result(timeout=120)
        assert registry.generation == 1          # the fixture's one publish


class TestBatchSplitting:
    def test_idle_pool_splits_one_batch_across_workers(
            self, registry, tiny_traffic_dataset):
        pool = WorkerPool(num_workers=3)
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, count=6)
        with pool:
            # Splitting is residency-gated: warm every worker first, as a
            # production pool attached via ``pool.watch(registry)`` would be.
            pool.prewarm(registry.resolve("traffic").path,
                         generation=registry.generation)
            pool.wait_idle(timeout=120)
            alone = [service.serve(request) for request in requests]
            tickets = [service.submit(request) for request in requests]
            service.flush()
            pooled = [ticket.result(timeout=120) for ticket in tickets]
            stats = pool.stats()
        assert stats["split_batches"] >= 1
        # The parts really ran on different workers.
        assert sum(1 for count in stats["executed_batches"] if count) >= 2
        # ...and the join preserved order and bits.
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)
            assert np.array_equal(reference.median, response.median)

    def test_split_disabled_routes_whole_batch_to_home_shard(
            self, registry, tiny_traffic_dataset):
        pool = WorkerPool(num_workers=3, split=False, steal=False)
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, count=6)
        with pool:
            tickets = [service.submit(request) for request in requests]
            service.flush()
            for ticket in tickets:
                ticket.result(timeout=120)
            stats = pool.stats()
        assert stats["split_batches"] == 0
        assert sum(1 for count in stats["executed_batches"] if count) == 1
