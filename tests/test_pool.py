"""Tests for the parallel worker pool behind the serving stack.

Covers the scheduling core (shard-aware routing, work stealing, admission
control, drain-on-stop), the failure contract (a batch error — including a
worker *process* dying mid-batch — resolves every affected ticket with the
error and never wedges the pool), and the bit-identity acceptance criterion:
pool-served responses equal ``service.serve`` alone in float32 and float64,
for both thread and process workers.
"""

import multiprocessing
import shutil
import threading
import time

import numpy as np
import pytest

from repro import (
    ImputationRequest,
    ImputationService,
    ModelRegistry,
    PriSTI,
    PriSTIConfig,
    ServiceOverloaded,
    WorkerPool,
)
from repro.inference.backend import BackendCache
from repro.serving import (
    BatchTask,
    PoolStopped,
    RequestPayload,
    WorkerCrashed,
    faults,
)
from repro.tensor import dtype_scope, get_default_dtype, is_grad_enabled, no_grad


def _fast_config(**overrides):
    defaults = dict(window_length=10, epochs=1, iterations_per_epoch=1,
                    num_diffusion_steps=6, num_samples=2, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


@pytest.fixture(scope="module")
def trained_models(tiny_traffic_dataset):
    """One float64 and one float32 model (module-scoped: training is the
    expensive part of every serving test)."""
    f64 = PriSTI(_fast_config()).fit(tiny_traffic_dataset)
    f32 = PriSTI(_fast_config(dtype="float32")).fit(tiny_traffic_dataset)
    return {"f64": f64, "f32": f32}


@pytest.fixture()
def registry(tmp_path, trained_models):
    registry = ModelRegistry(tmp_path / "models", max_loaded=4)
    registry.publish(trained_models["f64"], "traffic")
    registry.publish(trained_models["f32"], "traffic32")
    return registry


def _requests(dataset, model="traffic", count=4, length=10, num_samples=2):
    values, observed, evaluation = dataset.segment("test")
    mask = observed & ~evaluation
    return [
        ImputationRequest(model=model, values=values[s:s + length],
                          observed_mask=mask[s:s + length],
                          num_samples=num_samples, seed=100 + s)
        for s in range(count)
    ]


def _dummy_task(spec, execute, num_requests=1, on_done=None, on_error=None):
    """A synthetic BatchTask for scheduling tests (no trained model needed)."""
    payloads = [RequestPayload(values=None, observed_mask=None, num_samples=1,
                               rng=None, stride=None)
                for _ in range(num_requests)]
    return BatchTask(spec=spec, artifact_path="<none>", payloads=payloads,
                     on_done=on_done or (lambda raws: None),
                     on_error=on_error or (lambda error: None),
                     execute=execute)


class TestScheduling:
    def test_shard_routing_is_consistent_and_total(self):
        pool = WorkerPool(num_workers=4)
        specs = [f"model-{i}@1" for i in range(32)]
        first = [pool.shard_of(spec) for spec in specs]
        assert first == [pool.shard_of(spec) for spec in specs]
        assert set(first) <= set(range(4))
        # The same spec never migrates between pool instances of equal size.
        assert first == [WorkerPool(num_workers=4).shard_of(s) for s in specs]

    def test_same_spec_lands_on_home_worker(self):
        pool = WorkerPool(num_workers=3, steal=False)
        done = threading.Event()
        executed_by = []
        with pool:
            for index in range(4):
                pool.dispatch(_dummy_task(
                    "hot@1", execute=lambda wid: executed_by.append(wid)))
            assert pool.wait_idle(timeout=5.0)
            done.set()
        home = pool.shard_of("hot@1")
        assert executed_by == [home] * 4

    def test_idle_worker_steals_from_backed_up_shard(self):
        pool = WorkerPool(num_workers=2, steal=True)
        release = threading.Event()
        holder = {}
        executed_by = {}

        def blocking(wid):
            holder["wid"] = wid
            release.wait(timeout=10.0)
            return None

        with pool:
            pool.dispatch(_dummy_task("hot@1", execute=blocking))
            deadline = time.monotonic() + 5.0
            while "wid" not in holder and time.monotonic() < deadline:
                time.sleep(0.01)
            # Back up the *holder's* shard with two more batches (pick a spec
            # that routes to whichever worker holds the blocker).
            spec = next(f"model-{i}@1" for i in range(64)
                        if pool.shard_of(f"model-{i}@1") == holder["wid"])
            for name in ("b1", "b2"):
                pool.dispatch(_dummy_task(
                    spec,
                    execute=lambda wid, name=name: executed_by.__setitem__(name, wid)))
            # The sibling worker must take them over while the holder is busy.
            deadline = time.monotonic() + 5.0
            while len(executed_by) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            release.set()
            assert pool.wait_idle(timeout=5.0)
        assert set(executed_by) == {"b1", "b2"}
        assert all(wid != holder["wid"] for wid in executed_by.values())
        assert pool.stats()["stolen_batches"] >= 2

    def test_steal_disabled_pins_shards(self):
        pool = WorkerPool(num_workers=2, steal=False)
        release = threading.Event()
        executed_by = []
        home = pool.shard_of("hot@1")
        with pool:
            pool.dispatch(_dummy_task(
                "hot@1", execute=lambda wid: (release.wait(10.0), None)[1]))
            time.sleep(0.05)
            pool.dispatch(_dummy_task(
                "hot@1", execute=lambda wid: executed_by.append(wid)))
            time.sleep(0.1)          # the sibling must NOT have taken it
            assert executed_by == []
            release.set()
            assert pool.wait_idle(timeout=5.0)
        assert executed_by == [home]
        assert pool.stats()["stolen_batches"] == 0


class TestAdmissionControl:
    def test_dispatch_rejects_past_max_queue_depth(self):
        pool = WorkerPool(num_workers=1, max_queue_depth=2)
        release = threading.Event()
        with pool:
            pool.dispatch(_dummy_task(
                "a@1", execute=lambda wid: (release.wait(10.0), None)[1]))
            time.sleep(0.05)         # worker takes it; queue is empty again
            pool.dispatch(_dummy_task("a@1", execute=lambda wid: None,
                                      num_requests=2))
            with pytest.raises(ServiceOverloaded):
                pool.dispatch(_dummy_task("a@1", execute=lambda wid: None))
            release.set()
            assert pool.wait_idle(timeout=5.0)
        assert pool.stats()["rejected_requests"] == 1

    def test_service_submit_backpressure(self, registry, tiny_traffic_dataset):
        service = ImputationService(registry, max_batch_requests=64,
                                    max_queue_depth=2)
        requests = _requests(tiny_traffic_dataset, count=3)
        service.submit(requests[0])
        service.submit(requests[1])
        with pytest.raises(ServiceOverloaded):
            service.submit(requests[2])
        # Shedding load frees capacity again.
        service.flush()
        service.submit(requests[2]).result(timeout=30)

    def test_rejected_dispatch_resolves_tickets(self, registry,
                                                tiny_traffic_dataset):
        """A pool-side rejection at flush time must not strand the tickets
        that were already issued — they carry the ServiceOverloaded error."""
        pool = WorkerPool(num_workers=1, max_queue_depth=1)
        release = threading.Event()
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        with pool:
            pool.dispatch(_dummy_task(
                "blocker@1", execute=lambda wid: (release.wait(10.0), None)[1]))
            time.sleep(0.05)
            # Two queued requests flush as one 2-request batch: 2 > depth 1.
            tickets = [service.submit(request)
                       for request in _requests(tiny_traffic_dataset, count=2)]
            with pytest.raises(ServiceOverloaded):
                service.flush()
            for ticket in tickets:
                with pytest.raises(ServiceOverloaded):
                    ticket.result(timeout=5)
            release.set()


class TestStopSemantics:
    def test_stop_drain_completes_queued_work(self):
        pool = WorkerPool(num_workers=1)
        completed = []
        pool.start()
        release = threading.Event()
        pool.dispatch(_dummy_task(
            "a@1", execute=lambda wid: (release.wait(10.0), None)[1]))
        time.sleep(0.05)
        for index in range(3):
            pool.dispatch(_dummy_task(
                "a@1", execute=lambda wid, i=index: completed.append(i)))
        release.set()
        pool.stop(drain=True)
        assert completed == [0, 1, 2]

    def test_stop_no_drain_fails_queued_batches(self):
        pool = WorkerPool(num_workers=1)
        completed, errors = [], []
        release = threading.Event()
        pool.start()
        pool.dispatch(_dummy_task(
            "a@1", execute=lambda wid: (release.wait(10.0), completed.append("in-flight"))[0]))
        time.sleep(0.05)
        for index in range(3):
            pool.dispatch(_dummy_task(
                "a@1", execute=lambda wid, i=index: completed.append(i),
                on_error=errors.append))
        stopper = threading.Thread(target=pool.stop, kwargs={"drain": False})
        stopper.start()
        deadline = time.monotonic() + 5.0
        while len(errors) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert [type(error) for error in errors] == [PoolStopped] * 3
        assert "in-flight" in completed and 0 not in completed

    def test_dispatch_after_stop_raises(self):
        pool = WorkerPool(num_workers=1)
        pool.start()
        pool.stop()
        with pytest.raises(PoolStopped):
            pool.dispatch(_dummy_task("a@1", execute=lambda wid: None))

    def test_service_stop_waits_for_pool_backlog(self, registry,
                                                 tiny_traffic_dataset):
        pool = WorkerPool(num_workers=2)
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        with pool:
            tickets = [service.submit(request)
                       for request in _requests(tiny_traffic_dataset, count=4)]
            service.stop()            # final flush + wait for the pool
            assert all(ticket.done for ticket in tickets)
            for ticket in tickets:
                assert ticket.result(timeout=1).median.shape[0] == 10


class TestFailureContract:
    def test_batch_error_resolves_every_ticket(self, registry,
                                               tiny_traffic_dataset):
        """A worker hitting an error mid-batch (here: the artifact tree was
        destroyed under it) resolves ALL of the batch's tickets with it."""
        pool = WorkerPool(num_workers=1)
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        with pool:
            tickets = [service.submit(request)
                       for request in _requests(tiny_traffic_dataset, count=3)]
            shutil.rmtree(registry.root)
            service.flush()
            for ticket in tickets:
                with pytest.raises(Exception):
                    ticket.result(timeout=30)
            # The pool survives the failure and keeps scheduling.
            probe = []
            pool.dispatch(_dummy_task("probe@1",
                                      execute=lambda wid: probe.append(wid)))
            assert pool.wait_idle(timeout=5.0)
            assert probe

    def test_crash_storm_on_one_shard_does_not_livelock_peers(self):
        """Repeated injected crashes on one hot shard: every affected task's
        ticket resolves with ``WorkerCrashed``, stealing peers never wedge,
        and no queue slots leak (backlog returns to zero)."""
        storm = 5
        pool = WorkerPool(num_workers=2, steal=True)
        errors = []
        storm_done = threading.Event()

        def on_error(error):
            errors.append(error)
            if len(errors) == storm:
                storm_done.set()

        with pool:
            with faults.active([{"point": "pool.worker_crash",
                                 "after": 0, "count": storm}]):
                for _ in range(storm):
                    pool.dispatch(_dummy_task("hot@1",
                                              execute=lambda wid: None,
                                              on_error=on_error))
                assert storm_done.wait(timeout=10.0)
            assert len(errors) == storm
            assert all(isinstance(error, WorkerCrashed) for error in errors)
            # Both shards keep scheduling after the storm: tasks spread across
            # every spec execute, including on the previously crashing shard.
            executed = []
            for index in range(8):
                pool.dispatch(_dummy_task(
                    f"model-{index}@1",
                    execute=lambda wid: executed.append(wid)))
            assert pool.wait_idle(timeout=10.0)
            assert len(executed) == 8
            stats = pool.stats()
            assert stats["crashed_batches"] == storm
            assert stats["backlog_requests"] == 0       # no leaked slots
            assert stats["in_flight_batches"] == 0
            assert stats["dead_workers"] == 0   # thread workers survive crashes

    def test_worker_process_crash_resolves_tickets_and_respawns(
            self, registry, tiny_traffic_dataset):
        pool = WorkerPool(num_workers=1, mode="process")
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, count=2)
        with pool:
            # Warm batch: spawns the child and loads the model there.
            warm = [service.submit(request) for request in requests]
            service.flush()
            for ticket in warm:
                ticket.result(timeout=120)
            children = multiprocessing.active_children()
            assert children
            for child in children:
                child.terminate()
                child.join(timeout=10.0)
            # The next batch hits the dead child: every ticket carries the
            # crash, nothing hangs.
            tickets = [service.submit(request) for request in requests]
            service.flush()
            for ticket in tickets:
                with pytest.raises(WorkerCrashed):
                    ticket.result(timeout=120)
            assert pool.stats()["crashed_batches"] == 1
            # ...and the worker respawns a fresh child for the batch after.
            again = [service.submit(request) for request in requests]
            service.flush()
            for ticket, reference in zip(again, warm):
                response = ticket.result(timeout=120)
                assert np.array_equal(response.samples,
                                      reference.result(timeout=1).samples)


class TestBitIdentity:
    @pytest.mark.parametrize("model", ["traffic", "traffic32"])
    def test_thread_pool_matches_serve_alone(self, registry,
                                             tiny_traffic_dataset, model):
        pool = WorkerPool(num_workers=3)
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, model=model, count=6)
        with pool:
            alone = [service.serve(request) for request in requests]
            tickets = [service.submit(request) for request in requests]
            service.flush()
            pooled = [ticket.result(timeout=120) for ticket in tickets]
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)
            assert np.array_equal(reference.median, response.median)
            assert response.samples.dtype == reference.samples.dtype

    @pytest.mark.parametrize("model", ["traffic", "traffic32"])
    def test_process_pool_rehydration_matches_in_process(
            self, registry, tiny_traffic_dataset, model):
        """The process workers rebuild the model from its artifact; the
        rehydrated copy must produce the same bits as the in-process one."""
        pool = WorkerPool(num_workers=1, mode="process")
        service = ImputationService(registry, max_batch_requests=64,
                                    executor=pool)
        requests = _requests(tiny_traffic_dataset, model=model, count=3)
        with pool:
            alone = [service.serve(request) for request in requests]
            tickets = [service.submit(request) for request in requests]
            service.flush()
            pooled = [ticket.result(timeout=120) for ticket in tickets]
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)

    def test_mixed_models_under_concurrency(self, registry,
                                            tiny_traffic_dataset):
        """f32 and f64 batches executing on sibling workers must not perturb
        each other (thread-local dtype scopes, per-worker model copies)."""
        pool = WorkerPool(num_workers=2)
        service = ImputationService(registry, max_batch_requests=4,
                                    executor=pool)
        requests = (_requests(tiny_traffic_dataset, model="traffic", count=4)
                    + _requests(tiny_traffic_dataset, model="traffic32", count=4))
        with pool:
            alone = [service.serve(request) for request in requests]
            tickets = [service.submit(request) for request in requests]
            service.flush()
            pooled = [ticket.result(timeout=120) for ticket in tickets]
        for reference, response in zip(alone, pooled):
            assert np.array_equal(reference.samples, response.samples)


class TestThreadLocalTensorState:
    def test_dtype_scope_is_thread_local(self):
        seen = {}

        def probe():
            seen["dtype"] = get_default_dtype()

        with dtype_scope("float32"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert get_default_dtype() == np.dtype(np.float32)
        assert seen["dtype"] == np.dtype(np.float64)
        assert get_default_dtype() == np.dtype(np.float64)

    def test_no_grad_is_thread_local(self):
        seen = {}

        def probe():
            seen["grad"] = is_grad_enabled()

        with no_grad():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert not is_grad_enabled()
        assert seen["grad"] is True
        assert is_grad_enabled()


class TestSharedCaches:
    def test_registry_lru_is_thread_safe(self, registry):
        specs = ["traffic", "traffic32", "traffic@1"]
        errors = []

        def hammer(spec):
            try:
                for _ in range(20):
                    registry.load(spec)
            except Exception as error:   # pragma: no cover - the assertion
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(spec,))
                   for spec in specs for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = registry.stats()
        assert stats["hits"] + stats["misses"] == 120
        assert stats["resident"] <= registry.max_loaded

    def test_backend_cache_lru(self, registry):
        cache = BackendCache(max_loaded=1)
        first = registry.resolve("traffic")
        second = registry.resolve("traffic32")
        a = cache.get(first.path)
        assert cache.get(first.path) is a
        cache.get(second.path)
        assert cache.stats() == {"hits": 1, "misses": 2, "evictions": 1,
                                 "resident": 1, "stat_probes": 1,
                                 "stale_reloads": 0}
        assert cache.get(first.path) is not a    # reloaded after eviction

    def test_backend_cache_generation_skips_stat_probe(self, registry):
        cache = BackendCache(max_loaded=2)
        resolved = registry.resolve("traffic")
        a = cache.get(resolved.path, generation=3)
        assert cache.get(resolved.path, generation=3) is a
        assert cache.stats()["stat_probes"] == 0   # generation match: no stat
        # A generation bump probes the artifact once, sees unchanged bytes,
        # and revalidates the resident entry instead of reloading.
        assert cache.get(resolved.path, generation=4) is a
        stats = cache.stats()
        assert stats["stat_probes"] == 1 and stats["stale_reloads"] == 0
        assert cache.get(resolved.path, generation=4) is a
        assert cache.stats()["stat_probes"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(mode="fiber")
        with pytest.raises(ValueError):
            WorkerPool(max_queue_depth=0)
        with pytest.raises(ValueError):
            BackendCache(max_loaded=0)
        with pytest.raises(TypeError):
            WorkerPool().dispatch("not a task")
