"""Tests for the basic neural-network layers and the module system."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradient


class TestModuleSystem:
    def test_parameter_registration(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 3 * 2 + 2

    def test_nested_module_parameters(self, rng):
        mlp = nn.MLP(4, 8, 2, rng=rng)
        parameter_names = [name for name, _ in mlp.named_parameters()]
        assert any("layers.0" in name for name in parameter_names)
        assert any("layers.1" in name for name in parameter_names)

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_state_dict_roundtrip(self, rng):
        layer_a = nn.Linear(3, 3, rng=np.random.default_rng(0))
        layer_b = nn.Linear(3, 3, rng=np.random.default_rng(1))
        assert not np.allclose(layer_a.weight.data, layer_b.weight.data)
        layer_b.load_state_dict(layer_a.state_dict())
        assert np.allclose(layer_a.weight.data, layer_b.weight.data)

    def test_state_dict_shape_mismatch_raises(self, rng):
        layer = nn.Linear(3, 3, rng=rng)
        bad = {name: np.zeros((1, 1)) for name in layer.state_dict()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_state_dict_missing_key_raises(self, rng):
        layer = nn.Linear(3, 3, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})

    def test_zero_grad_clears(self, rng):
        layer = nn.Linear(2, 1, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_module_list_indexing(self, rng):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(layers) == 3
        assert isinstance(layers[1], nn.Linear)


class TestLinearAndNorm:
    def test_linear_shapes_arbitrary_rank(self, rng):
        layer = nn.Linear(5, 7, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 4, 5))))
        assert out.shape == (2, 3, 4, 7)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_conv1x1_is_channel_mixer(self, rng):
        conv = nn.Conv1x1(2, 4, rng=rng)
        out = conv(Tensor(rng.standard_normal((1, 3, 5, 2))))
        assert out.shape == (1, 3, 5, 4)

    def test_layernorm_statistics(self, rng):
        norm = nn.LayerNorm(16)
        out = norm(Tensor(rng.standard_normal((4, 16)) * 3 + 5))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_gradients(self, rng):
        norm = nn.LayerNorm(4)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        check_gradient(lambda ts: (norm(ts[0]) ** 2).sum(), [x])

    def test_linear_gradcheck_through_input(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradient(lambda ts: (layer(ts[0]) ** 2).sum(), [x])

    def test_linear_weight_gradient_matches_manual(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))
        out = layer(x)
        out.sum().backward()
        expected = x.data.T @ np.ones((4, 2))
        assert np.allclose(layer.weight.grad, expected)
        assert np.allclose(layer.bias.grad, 4.0)


class TestActivationsAndDropout:
    def test_gated_activation_halves_channels(self, rng):
        gate = nn.GatedActivation()
        out = gate(Tensor(rng.standard_normal((2, 3, 8))))
        assert out.shape == (2, 3, 4)

    def test_gated_activation_rejects_odd_channels(self, rng):
        with pytest.raises(ValueError):
            nn.GatedActivation()(Tensor(rng.standard_normal((2, 3))))

    def test_gated_activation_bounded(self, rng):
        out = nn.GatedActivation()(Tensor(rng.standard_normal((10, 10)) * 10))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_dropout_eval_is_identity(self, rng):
        dropout = nn.Dropout(0.5, rng=rng)
        dropout.eval()
        x = Tensor(rng.standard_normal((5, 5)))
        assert np.allclose(dropout(x).data, x.data)

    def test_dropout_train_scales(self, rng):
        dropout = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x).data
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_activation_modules_forward(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        for module in (nn.ReLU(), nn.Sigmoid(), nn.Tanh(), nn.GELU(), nn.SiLU(), nn.LeakyReLU()):
            assert module(x).shape == x.shape


class TestMLP:
    def test_mlp_output_shape(self, rng):
        mlp = nn.MLP(6, [8, 8], 3, rng=rng)
        assert mlp(Tensor(rng.standard_normal((5, 6)))).shape == (5, 3)

    def test_mlp_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.MLP(2, 2, 2, activation="nope")

    def test_mlp_single_hidden_int(self, rng):
        mlp = nn.MLP(4, 5, 2, rng=rng)
        assert len(list(mlp.layers)) == 2
