"""Gradient correctness of the autodiff engine (finite-difference checks)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    cat,
    check_gradient,
    gelu,
    leaky_relu,
    log_softmax,
    maximum,
    pad_time,
    silu,
    softmax,
    stack,
    where,
)


def _t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestElementwiseGradients:
    def test_add_mul_sub_div(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradient(
            lambda ts: ((ts[0] + ts[1]) * ts[0] - ts[1] / (ts[0] * ts[0] + 2.0)).sum(),
            [a, b])

    def test_scalar_broadcasting(self, rng):
        a = _t(rng, 4, 3)
        check_gradient(lambda ts: (3.0 * ts[0] + 1.5).mean(), [a])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.standard_normal((3, 3))) + 0.5, requires_grad=True)
        check_gradient(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_exp_log_sqrt(self, rng):
        a = Tensor(np.abs(rng.standard_normal((2, 5))) + 0.5, requires_grad=True)
        check_gradient(lambda ts: (ts[0].exp() + ts[0].log() + ts[0].sqrt()).sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.standard_normal((4, 4)) + 0.3, requires_grad=True)
        check_gradient(lambda ts: ts[0].abs().sum(), [a])

    def test_tanh_sigmoid_relu(self, rng):
        a = _t(rng, 3, 5)
        check_gradient(
            lambda ts: (ts[0].tanh() + ts[0].sigmoid() + (ts[0] + 5.0).relu()).sum(),
            [a])

    def test_clip_gradient_masked(self, rng):
        a = Tensor(np.linspace(-2, 2, 9).reshape(3, 3), requires_grad=True)
        out = a.clip(-1.0, 1.0)
        out.sum().backward()
        inside = (a.data >= -1.0) & (a.data <= 1.0)
        assert np.allclose(a.grad[inside], 1.0)
        assert np.allclose(a.grad[~inside], 0.0)


class TestMatmulAndReductions:
    def test_matmul_2d(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 2, 4, 5)
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = _t(rng, 4, 4), _t(rng, 2, 4, 3)
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_sum_axis(self, rng):
        a = _t(rng, 3, 4, 2)
        check_gradient(lambda ts: (ts[0].sum(axis=1) ** 2).sum(), [a])

    def test_mean_keepdims(self, rng):
        a = _t(rng, 3, 4)
        check_gradient(lambda ts: (ts[0] - ts[0].mean(axis=-1, keepdims=True)).abs().sum(), [a])

    def test_var(self, rng):
        a = _t(rng, 2, 6)
        check_gradient(lambda ts: ts[0].var(axis=-1).sum(), [a])

    def test_max_reduction(self, rng):
        a = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        check_gradient(lambda ts: ts[0].max(axis=1).sum(), [a], eps=1e-5)


class TestShapeOps:
    def test_reshape_transpose(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradient(lambda ts: (ts[0].reshape(6, 4).transpose(1, 0) ** 2).sum(), [a])

    def test_swapaxes(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradient(lambda ts: (ts[0].swapaxes(1, 2) * 2.0).sum(), [a])

    def test_getitem_slice(self, rng):
        a = _t(rng, 4, 5)
        check_gradient(lambda ts: (ts[0][1:3, ::2] ** 2).sum(), [a])

    def test_getitem_negative_step(self, rng):
        a = _t(rng, 3, 4)
        check_gradient(lambda ts: (ts[0][:, ::-1] * ts[0]).sum(), [a])

    def test_expand_squeeze_broadcast(self, rng):
        a = _t(rng, 3, 1, 4)
        check_gradient(lambda ts: ts[0].broadcast_to((3, 5, 4)).sum() + ts[0].squeeze(1).sum(), [a])

    def test_pad_time(self, rng):
        a = _t(rng, 2, 4, 3)
        check_gradient(lambda ts: (pad_time(ts[0], 2, 0, axis=-2) ** 2).sum(), [a])


class TestFunctionalOps:
    def test_cat(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 2)
        check_gradient(lambda ts: (cat([ts[0], ts[1]], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        check_gradient(lambda ts: (stack([ts[0], ts[1]], axis=0) * 3).sum(), [a, b])

    def test_where(self, rng):
        a, b = _t(rng, 3, 3), _t(rng, 3, 3)
        condition = rng.random((3, 3)) > 0.5
        check_gradient(lambda ts: where(condition, ts[0], ts[1]).sum(), [a, b])

    def test_maximum(self, rng):
        a, b = _t(rng, 3, 3), _t(rng, 3, 3)
        check_gradient(lambda ts: maximum(ts[0], ts[1]).sum(), [a, b])

    def test_softmax(self, rng):
        a = _t(rng, 2, 5)
        check_gradient(lambda ts: (softmax(ts[0], axis=-1) * np.arange(5)).sum(), [a])

    def test_log_softmax(self, rng):
        a = _t(rng, 2, 5)
        check_gradient(lambda ts: log_softmax(ts[0], axis=-1).sum(), [a])

    def test_activation_functions(self, rng):
        a = _t(rng, 3, 4)
        check_gradient(lambda ts: (gelu(ts[0]) + silu(ts[0]) + leaky_relu(ts[0])).sum(), [a])


class TestBackwardSemantics:
    def test_grad_accumulates_across_uses(self, rng):
        a = _t(rng, 3)
        out = (a * 2).sum() + (a * 3).sum()
        out.backward()
        assert np.allclose(a.grad, 5.0)

    def test_backward_requires_scalar(self, rng):
        a = _t(rng, 3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self, rng):
        a = Tensor(rng.standard_normal(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_detach_blocks_gradient(self, rng):
        a = _t(rng, 3)
        out = (a.detach() * 2).sum() + a.sum()
        out.backward()
        assert np.allclose(a.grad, 1.0)

    def test_no_grad_context(self, rng):
        from repro.tensor import no_grad

        a = _t(rng, 3)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_zero_grad(self, rng):
        a = _t(rng, 3)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None
