"""Tests for the baseline imputers (statistic, ML, factorisation, deep, diffusion)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    BATFImputer,
    BRITSImputer,
    CSDIImputer,
    DailyAverageImputer,
    GPVAEImputer,
    GRINImputer,
    KNNImputer,
    KalmanFilterImputer,
    LinearInterpolationImputer,
    MICEImputer,
    MeanImputer,
    RGAINImputer,
    TRMFImputer,
    VARImputer,
    VRINImputer,
)
from repro.core import PriSTIConfig
from repro.core.imputer import ImputationResult

DEEP_KWARGS = dict(window_length=12, hidden_size=8, epochs=2, iterations_per_epoch=2, batch_size=4)


def _check_result(result, dataset):
    values, observed, evaluation = dataset.segment("test")
    visible = observed & ~evaluation
    assert isinstance(result, ImputationResult)
    assert result.median.shape == values.shape
    assert np.all(np.isfinite(result.median))
    # Observed entries must pass through unchanged.
    assert np.allclose(result.median[visible], values[visible])
    metrics = result.metrics()
    assert np.isfinite(metrics["mae"]) and metrics["mae"] >= 0


class TestStatisticBaselines:
    @pytest.mark.parametrize("cls", [MeanImputer, DailyAverageImputer, KNNImputer,
                                     LinearInterpolationImputer, KalmanFilterImputer,
                                     MICEImputer, VARImputer, TRMFImputer, BATFImputer])
    def test_fit_impute_contract(self, cls, tiny_traffic_dataset):
        method = cls()
        method.fit(tiny_traffic_dataset)
        result = method.impute(tiny_traffic_dataset, segment="test")
        _check_result(result, tiny_traffic_dataset)

    def test_mean_imputer_uses_node_means(self, tiny_traffic_dataset):
        method = MeanImputer().fit(tiny_traffic_dataset)
        values, observed, evaluation = tiny_traffic_dataset.segment("train")
        mask = observed & ~evaluation
        node0_mean = values[:, 0][mask[:, 0]].mean()
        assert method._node_means[0] == pytest.approx(node0_mean)

    def test_daily_average_respects_period(self, tiny_traffic_dataset):
        method = DailyAverageImputer().fit(tiny_traffic_dataset)
        assert method._slot_means.shape == (tiny_traffic_dataset.steps_per_day,
                                            tiny_traffic_dataset.num_nodes)

    def test_linear_interpolation_beats_mean(self, tiny_traffic_dataset):
        """On smooth sensor data interpolation must beat the historical mean."""
        mean_mae = MeanImputer().fit(tiny_traffic_dataset).evaluate(tiny_traffic_dataset)["mae"]
        interp_mae = LinearInterpolationImputer().fit(tiny_traffic_dataset) \
            .evaluate(tiny_traffic_dataset)["mae"]
        assert interp_mae < mean_mae

    def test_knn_uses_neighbours(self, tiny_point_dataset):
        """KNN should beat the global mean when spatial correlation exists."""
        knn_mae = KNNImputer().fit(tiny_point_dataset).evaluate(tiny_point_dataset)["mae"]
        mean_mae = MeanImputer().fit(tiny_point_dataset).evaluate(tiny_point_dataset)["mae"]
        assert knn_mae < mean_mae * 1.2

    def test_fit_requires_dataset_type(self):
        with pytest.raises(TypeError):
            MeanImputer().fit(np.zeros((4, 4)))

    def test_evaluate_shortcut(self, tiny_traffic_dataset):
        metrics = LinearInterpolationImputer().fit(tiny_traffic_dataset) \
            .evaluate(tiny_traffic_dataset, segment="test")
        assert {"mae", "mse", "rmse", "crps"} <= set(metrics)


class TestFactorisationBaselines:
    def test_trmf_reduces_error_vs_mean(self, tiny_point_dataset):
        trmf_mae = TRMFImputer(rank=5, iterations=10).fit(tiny_point_dataset) \
            .evaluate(tiny_point_dataset)["mae"]
        mean_mae = MeanImputer().fit(tiny_point_dataset).evaluate(tiny_point_dataset)["mae"]
        assert trmf_mae < mean_mae

    def test_batf_finite_and_reasonable(self, tiny_air_dataset):
        metrics = BATFImputer(rank=4, iterations=5).fit(tiny_air_dataset) \
            .evaluate(tiny_air_dataset)
        assert np.isfinite(metrics["mae"])


class TestDeepBaselines:
    @pytest.mark.parametrize("cls", [BRITSImputer, GRINImputer, RGAINImputer,
                                     VRINImputer, GPVAEImputer])
    def test_fit_impute_contract(self, cls, tiny_traffic_dataset):
        method = cls(**DEEP_KWARGS)
        method.fit(tiny_traffic_dataset)
        result = method.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        _check_result(result, tiny_traffic_dataset)

    def test_training_reduces_loss(self, tiny_traffic_dataset):
        method = BRITSImputer(window_length=12, hidden_size=16, epochs=6,
                              iterations_per_epoch=4, batch_size=4)
        method.fit(tiny_traffic_dataset)
        losses = method.history["loss"]
        assert losses[-1] < losses[0]

    def test_probabilistic_flags(self):
        assert VRINImputer(**DEEP_KWARGS).probabilistic
        assert GPVAEImputer(**DEEP_KWARGS).probabilistic
        assert not BRITSImputer(**DEEP_KWARGS).probabilistic

    def test_probabilistic_samples_differ(self, tiny_traffic_dataset):
        method = VRINImputer(**DEEP_KWARGS)
        method.fit(tiny_traffic_dataset)
        result = method.impute(tiny_traffic_dataset, segment="test", num_samples=3)
        eval_mask = result.eval_mask
        if eval_mask.sum():
            spread = result.samples.std(axis=0)[eval_mask]
            assert spread.max() > 0

    def test_impute_before_fit_raises(self, tiny_traffic_dataset):
        with pytest.raises(RuntimeError):
            BRITSImputer(**DEEP_KWARGS).impute(tiny_traffic_dataset)

    def test_rgain_trains_discriminator(self, tiny_traffic_dataset):
        method = RGAINImputer(**DEEP_KWARGS)
        method.fit(tiny_traffic_dataset)
        assert method.discriminator is not None


class TestCSDI:
    def test_config_flags_forced(self):
        method = CSDIImputer(PriSTIConfig.fast())
        assert method.config.use_interpolation is False
        assert method.config.use_conditional_feature is False
        assert method.config.use_mpnn is False

    def test_fit_impute_contract(self, tiny_traffic_dataset):
        config = PriSTIConfig.fast(window_length=12, epochs=1, iterations_per_epoch=2,
                                   num_diffusion_steps=6, num_samples=2, batch_size=4)
        method = CSDIImputer(config)
        method.fit(tiny_traffic_dataset)
        result = method.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        _check_result(result, tiny_traffic_dataset)

    def test_condition_is_raw_values(self):
        method = CSDIImputer(PriSTIConfig.fast())
        values = np.arange(12, dtype=float).reshape(1, 3, 4)
        mask = np.ones_like(values)
        mask[0, 0, :2] = 0
        condition = method.build_condition(values * mask, mask)
        assert np.allclose(condition, values * mask)


class TestRegistry:
    def test_registry_complete(self):
        expected = {"Mean", "DA", "KNN", "Lin-ITP", "KF", "MICE", "VAR", "TRMF", "BATF",
                    "V-RIN", "GP-VAE", "rGAIN", "BRITS", "GRIN", "CSDI"}
        assert expected == set(BASELINE_REGISTRY)

    def test_registry_instantiable(self):
        for name, cls in BASELINE_REGISTRY.items():
            assert callable(cls)
