"""Tests for deterministic metrics, CRPS and the result table."""

import numpy as np
import pytest

from repro.metrics import (
    ResultTable,
    crps_from_samples,
    empirical_quantiles,
    interval_coverage,
    masked_mae,
    masked_mre,
    masked_mse,
    masked_rmse,
    quantile_loss,
)


class TestDeterministicMetrics:
    def test_known_values(self):
        prediction = np.array([[1.0, 2.0], [3.0, 5.0]])
        target = np.array([[1.0, 1.0], [3.0, 1.0]])
        assert masked_mae(prediction, target) == pytest.approx(1.25)
        assert masked_mse(prediction, target) == pytest.approx((0 + 1 + 0 + 16) / 4)
        assert masked_rmse(prediction, target) == pytest.approx(np.sqrt(17 / 4))

    def test_mask_restricts_evaluation(self):
        prediction = np.array([[0.0, 100.0]])
        target = np.array([[0.0, 0.0]])
        mask = np.array([[True, False]])
        assert masked_mae(prediction, target, mask) == 0.0

    def test_mre(self):
        prediction = np.array([2.0, 4.0])
        target = np.array([1.0, 5.0])
        assert masked_mre(prediction, target) == pytest.approx(2.0 / 6.0)

    def test_perfect_prediction_zero_error(self, rng):
        values = rng.standard_normal((10, 10))
        assert masked_mae(values, values) == 0.0
        assert masked_mse(values, values) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            masked_mae(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            masked_mae(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))


class TestCRPS:
    def test_quantile_loss_signs(self):
        # Over-prediction penalised by (1 - alpha), under-prediction by alpha.
        assert quantile_loss(np.array([2.0]), np.array([1.0]), 0.05) > 0
        assert quantile_loss(np.array([0.0]), np.array([1.0]), 0.05) > 0

    def test_crps_zero_for_degenerate_perfect_samples(self, rng):
        target = rng.standard_normal((5, 4)) + 10.0
        samples = np.repeat(target[None], 30, axis=0)
        assert crps_from_samples(samples, target) == pytest.approx(0.0, abs=1e-12)

    def test_crps_decreases_with_sharper_correct_distribution(self, rng):
        target = np.full((6, 6), 10.0)
        wide = 10.0 + rng.standard_normal((200, 6, 6)) * 5.0
        narrow = 10.0 + rng.standard_normal((200, 6, 6)) * 0.5
        assert crps_from_samples(narrow, target) < crps_from_samples(wide, target)

    def test_crps_penalises_bias(self, rng):
        target = np.full((6, 6), 10.0)
        unbiased = 10.0 + rng.standard_normal((200, 6, 6))
        biased = 15.0 + rng.standard_normal((200, 6, 6))
        assert crps_from_samples(unbiased, target) < crps_from_samples(biased, target)

    def test_crps_respects_mask(self, rng):
        target = np.zeros((4, 4))
        samples = rng.standard_normal((50, 4, 4))
        samples[:, 0, 0] += 100.0
        mask = np.ones((4, 4), dtype=bool)
        mask[0, 0] = False
        assert crps_from_samples(samples, target, mask) < crps_from_samples(samples, target)

    def test_crps_shape_validation(self, rng):
        with pytest.raises(ValueError):
            crps_from_samples(rng.standard_normal((10, 3, 3)), rng.standard_normal((4, 4)))

    def test_empirical_quantiles_monotone(self, rng):
        samples = rng.standard_normal((100, 5))
        quantiles = empirical_quantiles(samples, [0.1, 0.5, 0.9])
        assert np.all(quantiles[0] <= quantiles[1])
        assert np.all(quantiles[1] <= quantiles[2])

    def test_interval_coverage_calibrated_gaussian(self, rng):
        target = rng.standard_normal((20, 20))
        samples = target[None] + rng.standard_normal((300, 20, 20))
        coverage = interval_coverage(samples, target, lower=0.05, upper=0.95)
        assert 0.8 < coverage <= 1.0


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable(title="demo")
        table.add("A", "metric", 1.0)
        table.add("B", "metric", 2.0)
        text = table.render()
        assert "demo" in text and "A" in text and "metric" in text

    def test_mean_std_aggregation(self):
        table = ResultTable()
        table.add("A", "m", 1.0)
        table.add("A", "m", 3.0)
        mean, std, count = table.cell("A", "m")
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        assert count == 2

    def test_best_row(self):
        table = ResultTable()
        table.add("A", "mae", 2.0)
        table.add("B", "mae", 1.0)
        assert table.best_row("mae", mode="min") == "B"
        assert table.best_row("mae", mode="max") == "A"

    def test_as_dict_and_missing_cells(self):
        table = ResultTable()
        table.add("A", "x", 1.0)
        table.add("B", "y", 2.0)
        data = table.as_dict()
        assert data["A"]["x"] == 1.0
        assert "y" not in data["A"]
        assert "-" in table.render()

    def test_empty_cell_returns_none(self):
        table = ResultTable()
        table.add("A", "x", 1.0)
        assert table.cell("A", "missing") is None
