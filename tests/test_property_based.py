"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.interpolation import interpolate_series
from repro.data.masks import block_strategy, hybrid_strategy, point_strategy
from repro.data.missing import inject_block_missing, inject_point_missing
from repro.data.scalers import StandardScaler
from repro.diffusion import GaussianDiffusion, make_schedule, quadratic_schedule
from repro.metrics import crps_from_samples, masked_mae, masked_mse
from repro.tensor import Tensor, softmax

SETTINGS = dict(max_examples=25, deadline=None)

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def small_matrix(draw, min_side=1, max_side=6):
    rows = draw(st.integers(min_side, max_side))
    cols = draw(st.integers(min_side, max_side))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=finite_floats))


class TestTensorProperties:
    @settings(**SETTINGS)
    @given(small_matrix())
    def test_addition_commutative(self, data):
        a, b = Tensor(data), Tensor(data * 0.5 + 1.0)
        assert np.allclose((a + b).data, (b + a).data)

    @settings(**SETTINGS)
    @given(small_matrix())
    def test_softmax_is_distribution(self, data):
        probabilities = softmax(Tensor(data), axis=-1).data
        assert np.all(probabilities >= 0)
        assert np.allclose(probabilities.sum(axis=-1), 1.0, atol=1e-9)

    @settings(**SETTINGS)
    @given(small_matrix())
    def test_sum_backward_is_ones(self, data):
        tensor = Tensor(data, requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, 1.0)

    @settings(**SETTINGS)
    @given(small_matrix(), st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_scalar_multiplication_linearity(self, data, scalar):
        tensor = Tensor(data, requires_grad=True)
        (tensor * scalar).sum().backward()
        assert np.allclose(tensor.grad, scalar)


class TestMetricProperties:
    @settings(**SETTINGS)
    @given(small_matrix())
    def test_mae_zero_iff_equal(self, data):
        assert masked_mae(data, data) == 0.0
        if np.abs(data).max() > 0:
            assert masked_mae(data + 1.0, data) > 0

    @settings(**SETTINGS)
    @given(small_matrix(), small_matrix())
    def test_mse_dominates_squared_mae_shapes(self, a, b):
        if a.shape != b.shape:
            return
        mae = masked_mae(a, b)
        mse = masked_mse(a, b)
        assert mse + 1e-12 >= mae ** 2 / max(a.size, 1) * 0  # non-negativity sanity
        assert mse >= 0 and mae >= 0

    @settings(**SETTINGS)
    @given(st.integers(5, 40), st.integers(2, 5))
    def test_crps_nonnegative_and_translation_sensitive(self, num_samples, side):
        rng = np.random.default_rng(0)
        target = rng.standard_normal((side, side))
        samples = target[None] + rng.standard_normal((num_samples, side, side)) * 0.1
        base = crps_from_samples(samples, target)
        shifted = crps_from_samples(samples + 5.0, target)
        assert base >= 0
        assert shifted > base


class TestScalerProperties:
    @settings(**SETTINGS)
    @given(hnp.arrays(np.float64, (30, 3),
                      elements=st.floats(min_value=-1e4, max_value=1e4,
                                         allow_nan=False, allow_infinity=False)))
    def test_roundtrip_identity(self, values):
        scaler = StandardScaler()
        transformed = scaler.fit_transform(values)
        recovered = scaler.inverse_transform(transformed)
        assert np.allclose(recovered, values, atol=1e-6 * max(1.0, np.abs(values).max()))


class TestMaskProperties:
    @settings(**SETTINGS)
    @given(st.integers(2, 8), st.integers(8, 40), st.integers(0, 10_000))
    def test_training_strategies_return_subsets(self, nodes, length, seed):
        rng = np.random.default_rng(seed)
        observed = rng.random((nodes, length)) > 0.2
        for strategy in (point_strategy, block_strategy, hybrid_strategy):
            conditional = strategy(observed, rng=rng)
            assert conditional.shape == observed.shape
            assert np.all(conditional <= observed)

    @settings(**SETTINGS)
    @given(st.integers(2, 6), st.integers(20, 80),
           st.floats(min_value=0.0, max_value=0.9), st.integers(0, 10_000))
    def test_injection_partition(self, nodes, length, rate, seed):
        rng = np.random.default_rng(seed)
        observed = rng.random((length, nodes)) > 0.1
        new_observed, eval_mask = inject_point_missing(observed, rate=rate, rng=rng)
        # The injected targets and the remaining observations partition the
        # original observations.
        assert not np.any(new_observed & eval_mask)
        assert np.array_equal(new_observed | eval_mask, observed)

    @settings(**SETTINGS)
    @given(st.integers(2, 5), st.integers(30, 80), st.integers(0, 10_000))
    def test_block_injection_subset(self, nodes, length, seed):
        rng = np.random.default_rng(seed)
        observed = np.ones((length, nodes), dtype=bool)
        new_observed, eval_mask = inject_block_missing(observed, rng=rng)
        assert np.all(eval_mask <= observed)
        assert not np.any(new_observed & eval_mask)


class TestInterpolationProperties:
    @settings(**SETTINGS)
    @given(st.integers(3, 50), st.integers(0, 10_000))
    def test_interpolation_within_observed_range(self, length, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(length) * 10
        mask = rng.random(length) > 0.4
        if mask.sum() == 0:
            mask[0] = True
        filled = interpolate_series(values * mask, mask)
        observed_values = (values * mask)[mask]
        assert filled.min() >= observed_values.min() - 1e-9
        assert filled.max() <= observed_values.max() + 1e-9
        assert np.allclose(filled[mask], observed_values)


class TestScheduleProperties:
    @settings(**SETTINGS)
    @given(st.integers(2, 200),
           st.floats(min_value=1e-5, max_value=1e-2),
           st.floats(min_value=0.05, max_value=0.5))
    def test_quadratic_schedule_bounds(self, steps, beta_min, beta_max):
        schedule = quadratic_schedule(steps, beta_min, beta_max)
        assert len(schedule.betas) == steps
        assert np.all(schedule.betas > 0) and np.all(schedule.betas < 1)
        assert np.all(np.diff(schedule.alpha_bars) <= 1e-12)
        assert np.all(schedule.posterior_variance(np.arange(steps)) >= -1e-12)

    @settings(**SETTINGS)
    @given(st.sampled_from(["quadratic", "linear", "cosine"]), st.integers(2, 150))
    def test_all_schedules_monotonic(self, name, num_steps):
        """alpha_bar must decrease strictly for every named schedule."""
        schedule = make_schedule(name, num_steps)
        assert schedule.num_steps == num_steps
        assert np.all(schedule.betas > 0) and np.all(schedule.betas < 1)
        assert np.all(np.diff(schedule.alpha_bars) < 0)
        assert 0 < schedule.alpha_bars[-1] < schedule.alpha_bars[0] < 1
        assert np.all(schedule.posterior_variance(np.arange(num_steps)) >= -1e-12)
        # The derived square-root tables must match the cumulative products.
        steps = np.arange(num_steps)
        assert np.allclose(schedule.sqrt_alpha_bar(steps) ** 2, schedule.alpha_bars)
        assert np.allclose(schedule.sqrt_one_minus_alpha_bar(steps) ** 2,
                           1.0 - schedule.alpha_bars)


class TestDiffusionProcessProperties:
    @settings(**SETTINGS)
    @given(st.sampled_from(["quadratic", "linear", "cosine"]),
           st.integers(2, 60), st.integers(0, 10_000))
    def test_q_sample_predict_x0_roundtrip(self, name, num_steps, seed):
        """predict_x0 must invert q_sample exactly, given the true noise."""
        rng = np.random.default_rng(seed)
        diffusion = GaussianDiffusion(make_schedule(name, num_steps), rng=rng)
        x0 = rng.standard_normal((4, 3, 5)) * 3.0
        steps = rng.integers(0, num_steps, size=4)
        noisy, noise = diffusion.q_sample(x0, steps)
        for index, step in enumerate(steps):
            recovered = diffusion.predict_x0(noisy[index], noise[index], int(step))
            assert np.allclose(recovered, x0[index], atol=1e-8)

    @settings(**SETTINGS)
    @given(st.integers(2, 40), st.integers(1, 4), st.integers(0, 10_000))
    def test_batched_sampler_matches_serial(self, num_steps, num_samples, seed):
        """RNG-stream design invariant: batched == serial under a shared seed."""
        rng = np.random.default_rng(seed)
        x0 = rng.standard_normal((2, 3))

        def oracle(diffusion):
            def noise_fn(x_t, step):
                alpha_bar = diffusion.schedule.alpha_bars[step]
                return (x_t - np.sqrt(alpha_bar) * x0) / np.sqrt(1 - alpha_bar)
            return noise_fn

        serial_diff = GaussianDiffusion(make_schedule("quadratic", num_steps),
                                        rng=np.random.default_rng(seed + 1))
        batched_diff = GaussianDiffusion(make_schedule("quadratic", num_steps),
                                         rng=np.random.default_rng(seed + 1))
        serial = serial_diff.sample(x0.shape, oracle(serial_diff),
                                    num_samples=num_samples, batched=False)
        batched = batched_diff.sample(x0.shape, oracle(batched_diff),
                                      num_samples=num_samples, batched=True)
        assert np.allclose(batched, serial, atol=1e-10)


class TestWindowStartsProperties:
    """The overlap-averaging plan must cover every index, exactly."""

    @settings(**SETTINGS)
    @given(st.integers(1, 120), st.integers(1, 40), st.integers(1, 50))
    def test_every_index_covered(self, length, window_length, stride):
        """Every time index of [0, length) falls inside ≥ 1 planned window,
        no window leaves [0, length), and the coverage counts the engine
        accumulates during overlap averaging match an index-wise recount —
        for all (length, window_length, stride) combinations."""
        from repro.inference import InferenceEngine

        if length < window_length:
            with pytest.raises(ValueError, match="shorter than the window"):
                InferenceEngine.window_starts(length, window_length, stride)
            return
        if stride > window_length:
            # A stride beyond the window would leave uncovered gaps; the
            # planner refuses instead of silently averaging zeros there.
            with pytest.raises(ValueError, match="stride"):
                InferenceEngine.window_starts(length, window_length, stride)
            return
        starts = InferenceEngine.window_starts(length, window_length, stride)

        # Well-formed plan: sorted unique starts, in bounds, first at 0.
        assert starts == sorted(set(starts))
        assert starts[0] == 0
        assert all(0 <= start <= length - window_length for start in starts)

        # Exact coverage: recount per index and require ≥ 1 everywhere, so
        # the overlap-averaging denominator is never the max(counts, 1) fudge
        # (a zero count would silently average nothing into a zero sample).
        coverage = np.zeros(length, dtype=int)
        for start in starts:
            coverage[start:start + window_length] += 1
        assert np.all(coverage >= 1), f"uncovered indices for starts={starts}"

    @settings(**SETTINGS)
    @given(st.integers(1, 120), st.integers(1, 40), st.integers(1, 50))
    def test_tail_window_is_flush_with_the_end(self, length, window_length, stride):
        """The plan always ends with the window [length - W, length) — the
        tail-window edge case: when the stride pattern overshoots, one extra
        flush-right window is appended rather than dropping the tail."""
        from repro.inference import InferenceEngine

        if length < window_length or stride > window_length:
            return
        starts = InferenceEngine.window_starts(length, window_length, stride)
        assert starts[-1] == length - window_length
        regular = list(range(0, length - window_length + 1, stride))
        if regular and regular[-1] == length - window_length:
            assert starts == regular                      # stride lands exactly
        else:
            assert starts == regular + [length - window_length]   # appended tail
