"""Tests for the batched reverse-diffusion inference engine.

Covers the engine's three responsibilities — ``(window, sample)`` chunking,
per-window condition caching, and strided-window overlap averaging — plus the
bit-compatibility contract between the batched path and the pre-engine serial
reference (``impute(..., batched=False)``).
"""

import numpy as np
import pytest

from repro import InferenceEngine, PriSTI, PriSTIConfig
from repro.baselines import CSDIImputer
from repro.diffusion import GaussianDiffusion, quadratic_schedule


def _fast_config(**overrides):
    defaults = dict(window_length=12, epochs=1, iterations_per_epoch=1,
                    num_diffusion_steps=8, num_samples=3, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


def _reseeded_impute(model, dataset, seed=99, **kwargs):
    """Impute with a freshly seeded sampling RNG so runs are comparable."""
    model.diffusion.rng = np.random.default_rng(seed)
    return model.impute(dataset, segment="test", **kwargs)


# ----------------------------------------------------------------------
# Engine-level tests (fake predictor; no training involved)
# ----------------------------------------------------------------------
class TestEngineMechanics:
    def _engine(self, num_steps=6, **kwargs):
        diffusion = GaussianDiffusion(quadratic_schedule(num_steps),
                                      rng=np.random.default_rng(0))

        def predict(x_t, condition, steps, conditional_mask, cache=None):
            assert x_t.shape == condition.shape == conditional_mask.shape
            assert len(steps) == x_t.shape[0]
            return np.zeros_like(x_t)

        return InferenceEngine(diffusion, predict, **kwargs)

    def test_condition_built_once_per_window(self):
        engine = self._engine()
        calls = []

        def build_condition(values, mask):
            calls.append(values.shape)
            return np.asarray(values, dtype=np.float64)

        values = np.arange(40.0).reshape(20, 2)
        mask = np.ones((20, 2), dtype=bool)
        samples = engine.impute_segment(values, mask, window_length=8, stride=4,
                                        num_samples=5, build_condition=build_condition)
        starts = engine.window_starts(20, 8, 4)          # [0, 4, 8, 12]
        assert samples.shape == (5, 20, 2)
        # One call per window — never per (window, sample) pair.
        assert len(calls) == len(starts) == 4
        assert all(shape == (1, 2, 8) for shape in calls)

    def test_chunk_size_does_not_change_results(self):
        values = np.linspace(-1, 1, 36).reshape(18, 2)
        mask = np.ones((18, 2), dtype=bool)
        def build(v, m):
            return np.asarray(v, dtype=np.float64)
        reference = None
        for batch_size in (1, 2, 3, 7, 64, None):
            engine = self._engine(inference_batch_size=batch_size)
            result = engine.impute_segment(values, mask, window_length=6, stride=3,
                                           num_samples=3, build_condition=build)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, atol=1e-10, rtol=0)

    def test_overlap_counts_average_strided_windows(self):
        """Uneven window coverage must still yield a finite full-segment result."""
        diffusion = GaussianDiffusion(quadratic_schedule(4), rng=np.random.default_rng(0))

        def predict(x_t, condition, steps, conditional_mask, cache=None):
            return np.zeros_like(x_t)

        engine = InferenceEngine(diffusion, predict)
        values = np.zeros((10, 1))
        mask = np.ones((10, 1), dtype=bool)
        samples = engine.impute_segment(values, mask, window_length=6, stride=2,
                                        num_samples=2, build_condition=lambda v, m: v)
        # starts = [0, 2, 4]: coverage 1..3 windows per time step; averaging
        # must keep the output finite and shaped like the segment.
        assert samples.shape == (2, 10, 1)
        assert np.all(np.isfinite(samples))

    def test_short_segment_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="shorter than the window"):
            engine.impute_segment(np.zeros((4, 2)), np.ones((4, 2), dtype=bool),
                                  window_length=8, num_samples=1,
                                  build_condition=lambda v, m: v)

    def test_cache_dict_passed_on_batched_path_only(self):
        diffusion = GaussianDiffusion(quadratic_schedule(5), rng=np.random.default_rng(0))
        seen = []

        def predict(x_t, condition, steps, conditional_mask, cache=None):
            seen.append(cache)
            return np.zeros_like(x_t)

        engine = InferenceEngine(diffusion, predict)
        values, mask = np.zeros((8, 2)), np.ones((8, 2), dtype=bool)
        engine.impute_segment(values, mask, window_length=8, num_samples=2,
                              build_condition=lambda v, m: v, batched=True)
        assert all(isinstance(cache, dict) for cache in seen)
        # One chunk: the same scratch dict is reused across its steps.
        assert len({id(cache) for cache in seen}) == 1

        seen.clear()
        engine.impute_segment(values, mask, window_length=8, num_samples=2,
                              build_condition=lambda v, m: v, batched=False)
        assert all(cache is None for cache in seen)

    def test_invalid_arguments_rejected(self):
        diffusion = GaussianDiffusion(quadratic_schedule(4), rng=np.random.default_rng(0))
        def predict(*a, **k):
            return None
        with pytest.raises(ValueError):
            InferenceEngine(diffusion, predict, parameterization="bogus")
        with pytest.raises(ValueError):
            InferenceEngine(diffusion, predict, inference_batch_size=0)


# ----------------------------------------------------------------------
# Model-level equivalence (trained imputers, both parameterizations)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_models(tiny_traffic_dataset):
    """One cheaply trained PriSTI per parameterization."""
    models = {}
    for parameterization in ("epsilon", "x0_residual"):
        model = PriSTI(_fast_config(parameterization=parameterization))
        model.fit(tiny_traffic_dataset)
        models[parameterization] = model
    return models


class TestBatchedImputeEquivalence:
    @pytest.mark.parametrize("parameterization", ["epsilon", "x0_residual"])
    def test_strided_batched_matches_serial(self, trained_models, tiny_traffic_dataset,
                                            parameterization):
        """stride < window: batched engine == pre-change serial loop (≤1e-10)."""
        model = trained_models[parameterization]
        batched = _reseeded_impute(model, tiny_traffic_dataset, num_samples=3,
                                   stride=5, batched=True)
        serial = _reseeded_impute(model, tiny_traffic_dataset, num_samples=3,
                                  stride=5, batched=False)
        np.testing.assert_allclose(batched.samples, serial.samples, atol=1e-10, rtol=0)
        np.testing.assert_allclose(batched.median, serial.median, atol=1e-10, rtol=0)

    def test_ddim_batched_matches_serial(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(ddim_steps=4))
        model.fit(tiny_traffic_dataset)
        batched = _reseeded_impute(model, tiny_traffic_dataset, num_samples=2,
                                   stride=7, batched=True)
        serial = _reseeded_impute(model, tiny_traffic_dataset, num_samples=2,
                                  stride=7, batched=False)
        np.testing.assert_allclose(batched.samples, serial.samples, atol=1e-10, rtol=0)

    def test_cross_window_chunks_match_default(self, trained_models, tiny_traffic_dataset):
        """Chunks spanning window boundaries must not change the output."""
        model = trained_models["x0_residual"]
        reference = _reseeded_impute(model, tiny_traffic_dataset, num_samples=3, stride=5)
        for batch_size in (1, 2, 7, 64):
            model.config.inference_batch_size = batch_size
            try:
                result = _reseeded_impute(model, tiny_traffic_dataset, num_samples=3, stride=5)
            finally:
                model.config.inference_batch_size = None
            np.testing.assert_allclose(result.samples, reference.samples,
                                       atol=1e-10, rtol=0)

    def test_observed_entries_passed_through_strided(self, trained_models,
                                                     tiny_traffic_dataset):
        model = trained_models["epsilon"]
        result = _reseeded_impute(model, tiny_traffic_dataset, num_samples=2, stride=4)
        values, observed, evaluation = tiny_traffic_dataset.segment("test")
        visible = observed & ~evaluation
        assert np.allclose(result.median[visible], values[visible])
        assert np.allclose(result.samples[:, visible], values[visible][None])

    def test_csdi_shares_engine(self, tiny_traffic_dataset):
        model = CSDIImputer(_fast_config())
        model.fit(tiny_traffic_dataset)
        batched = _reseeded_impute(model, tiny_traffic_dataset, num_samples=2,
                                   stride=5, batched=True)
        serial = _reseeded_impute(model, tiny_traffic_dataset, num_samples=2,
                                  stride=5, batched=False)
        np.testing.assert_allclose(batched.samples, serial.samples, atol=1e-10, rtol=0)

    def test_engine_requires_fit(self, tiny_traffic_dataset):
        with pytest.raises(RuntimeError):
            PriSTI(_fast_config()).inference_engine()

    def test_config_rejects_bad_inference_batch_size(self):
        with pytest.raises(ValueError):
            _fast_config(inference_batch_size=0)
        assert _fast_config(inference_batch_size=32).inference_batch_size == 32

    @pytest.mark.slow
    def test_equivalence_sweep(self, tiny_traffic_dataset):
        """Exhaustive batched-vs-serial sweep; run with --run-slow."""
        for parameterization in ("epsilon", "x0_residual"):
            for ddim_steps in (None, 4):
                for stride in (3, 6, 12):
                    model = PriSTI(_fast_config(parameterization=parameterization,
                                                ddim_steps=ddim_steps))
                    model.fit(tiny_traffic_dataset)
                    batched = _reseeded_impute(model, tiny_traffic_dataset,
                                               num_samples=3, stride=stride, batched=True)
                    serial = _reseeded_impute(model, tiny_traffic_dataset,
                                              num_samples=3, stride=stride, batched=False)
                    np.testing.assert_allclose(batched.samples, serial.samples,
                                               atol=1e-10, rtol=0)
