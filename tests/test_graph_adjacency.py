"""Tests for adjacency construction and sensor-network generators."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    SensorNetwork,
    city_station_network,
    forward_backward_transitions,
    gaussian_kernel_adjacency,
    highway_corridor_network,
    node_connectivity,
    pairwise_distances,
    row_normalize,
    symmetric_normalize,
    thresholded_gaussian_adjacency,
)


class TestDistancesAndKernels:
    def test_pairwise_distances_symmetric_zero_diag(self, rng):
        coordinates = rng.random((8, 2))
        distances = pairwise_distances(coordinates)
        assert distances.shape == (8, 8)
        assert np.allclose(distances, distances.T)
        assert np.allclose(np.diag(distances), 0.0)

    def test_pairwise_distances_known_values(self):
        distances = pairwise_distances([[0.0, 0.0], [3.0, 4.0]])
        assert distances[0, 1] == pytest.approx(5.0)

    def test_pairwise_distances_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_distances([1.0, 2.0])

    def test_gaussian_kernel_properties(self, rng):
        distances = pairwise_distances(rng.random((6, 2)))
        weights = gaussian_kernel_adjacency(distances)
        assert np.all(weights >= 0) and np.all(weights <= 1)
        assert np.allclose(np.diag(weights), 0.0)

    def test_threshold_sparsifies(self, rng):
        distances = pairwise_distances(rng.random((10, 2)) * 5)
        dense = gaussian_kernel_adjacency(distances)
        sparse = thresholded_gaussian_adjacency(distances, threshold=0.5)
        assert (sparse > 0).sum() <= (dense > 0).sum()
        assert np.all(sparse[(sparse > 0)] >= 0.5)

    def test_closer_nodes_get_larger_weights(self):
        coordinates = [[0, 0], [0.1, 0], [5, 5]]
        weights = gaussian_kernel_adjacency(pairwise_distances(coordinates))
        assert weights[0, 1] > weights[0, 2]


class TestNormalisations:
    def test_row_normalize_stochastic(self, rng):
        adjacency = rng.random((5, 5))
        transition = row_normalize(adjacency)
        assert np.allclose(transition.sum(axis=1), 1.0)

    def test_symmetric_normalize_eigenvalue_bound(self, rng):
        adjacency = rng.random((6, 6))
        adjacency = (adjacency + adjacency.T) / 2
        normalised = symmetric_normalize(adjacency)
        eigenvalues = np.linalg.eigvalsh(normalised)
        assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-8

    def test_forward_backward_transitions(self, rng):
        adjacency = rng.random((4, 4))
        forward, backward = forward_backward_transitions(adjacency)
        assert np.allclose(forward.sum(axis=1), 1.0)
        assert np.allclose(backward.sum(axis=1), 1.0)

    def test_node_connectivity_ordering(self):
        adjacency = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        connectivity = node_connectivity(adjacency)
        assert np.argmax(connectivity) == 0


class TestNetworks:
    def test_highway_network_size_and_adjacency(self):
        network = highway_corridor_network(15, rng=np.random.default_rng(0))
        assert network.num_nodes == 15
        assert network.adjacency.shape == (15, 15)
        assert np.allclose(network.adjacency, network.adjacency.T)

    def test_city_network_size(self):
        network = city_station_network(9, rng=np.random.default_rng(0))
        assert network.num_nodes == 9
        assert network.coordinates.shape == (9, 2)

    def test_network_rejects_mismatched_adjacency(self):
        with pytest.raises(ValueError):
            SensorNetwork(np.zeros((3, 2)), np.zeros((4, 4)))

    def test_to_networkx_graph(self):
        network = highway_corridor_network(8, rng=np.random.default_rng(1))
        graph = network.to_networkx()
        assert isinstance(graph, nx.Graph)
        assert graph.number_of_nodes() == 8
        expected_edges = int((network.adjacency > 0).sum() / 2)
        assert graph.number_of_edges() == expected_edges

    def test_networks_have_some_edges(self):
        network = highway_corridor_network(12, rng=np.random.default_rng(2))
        assert (network.adjacency > 0).sum() > 0
