"""Tests for the Graph-WaveNet forecaster and the downstream task wrapper."""

import numpy as np
import pytest

from repro.forecasting import ForecastingTask, GraphWaveNetForecaster
from repro.tensor import Tensor


@pytest.fixture
def adjacency(rng):
    a = rng.random((5, 5))
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    return a


class TestForecasterNetwork:
    def test_output_shape(self, rng, adjacency):
        model = GraphWaveNetForecaster(5, adjacency, history=8, horizon=4, channels=8, rng=rng)
        out = model(Tensor(rng.standard_normal((3, 5, 8))))
        assert out.shape == (3, 5, 4)

    def test_gradients_flow(self, rng, adjacency):
        model = GraphWaveNetForecaster(5, adjacency, history=6, horizon=3, channels=8, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 5, 6))))
        (out * out).sum().backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert any(grads)

    def test_different_histories_give_different_forecasts(self, rng, adjacency):
        model = GraphWaveNetForecaster(5, adjacency, history=6, horizon=3, channels=8, rng=rng)
        a = model(Tensor(rng.standard_normal((1, 5, 6)))).data
        b = model(Tensor(rng.standard_normal((1, 5, 6)))).data
        assert not np.allclose(a, b)


class TestForecastingTask:
    def _series(self, rng, steps=160, nodes=5):
        time_index = np.arange(steps)
        base = 50 + 10 * np.sin(2 * np.pi * time_index / 24)[:, None]
        return base + rng.standard_normal((steps, nodes))

    def test_run_returns_metrics(self, rng, adjacency):
        task = ForecastingTask(history=6, horizon=6, channels=8, layers=1, epochs=2,
                               iterations_per_epoch=2, batch_size=4)
        metrics = task.run(self._series(rng), adjacency)
        assert set(metrics) == {"mae", "rmse"}
        assert np.isfinite(metrics["mae"]) and metrics["mae"] >= 0
        assert metrics["rmse"] >= metrics["mae"] - 1e-9

    def test_training_improves_over_untrained(self, rng, adjacency):
        series = self._series(rng, steps=200)
        short = ForecastingTask(history=6, horizon=6, channels=8, layers=1, epochs=1,
                                iterations_per_epoch=1, batch_size=4, seed=0)
        long = ForecastingTask(history=6, horizon=6, channels=8, layers=1, epochs=8,
                               iterations_per_epoch=6, batch_size=8, seed=0)
        mae_short = short.run(series, adjacency)["mae"]
        mae_long = long.run(series, adjacency)["mae"]
        assert mae_long <= mae_short * 1.5

    def test_eval_mask_restriction(self, rng, adjacency):
        series = self._series(rng)
        mask = np.ones_like(series, dtype=bool)
        task = ForecastingTask(history=6, horizon=6, channels=8, layers=1, epochs=1,
                               iterations_per_epoch=1, batch_size=4)
        metrics = task.run(series, adjacency, eval_mask=mask)
        assert np.isfinite(metrics["mae"])

    def test_too_short_series_raises(self, rng, adjacency):
        task = ForecastingTask(history=50, horizon=50, epochs=1, iterations_per_epoch=1)
        with pytest.raises(ValueError):
            task.run(self._series(rng, steps=60), adjacency)
