"""Tests for the shared training runtime (repro.training).

Covers: the single Trainer code path for both imputer families, loss-history
parity with the pre-refactor hand-rolled loops (pinned values generated from
the deleted loops under the same seeds), fit's chaining contract, the
callback protocol (logging / early stopping / interruptible max_epochs) and
the model-owned wall-clock timers.
"""

import numpy as np
import pytest

from repro.baselines import BRITSImputer
from repro.core import PriSTI, PriSTIConfig
from repro.experiments import Profile, evaluate_method
from repro.training import Callback, EarlyStopping, LossLogger, Trainer, TrainingPlan


def _fast_config(**overrides):
    defaults = dict(window_length=12, epochs=3, iterations_per_epoch=3,
                    num_diffusion_steps=8, num_samples=3, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


# Epoch-loss histories recorded from the pre-Trainer ``fit`` loops (the
# duplicated code deleted by this refactor) under these exact seeds/configs.
# The shared Trainer must consume the models' RNG streams in the same order,
# so the histories must match to the last bit (float64) / float32 rounding.
PRE_REFACTOR_PRISTI_F64 = [0.186357776752364, 0.09038775187594206, 0.06312614983398294]
PRE_REFACTOR_PRISTI_F32 = [0.1863577738404274, 0.09038775165875752, 0.0631261554857095]
PRE_REFACTOR_BRITS = [0.8569310484259219, 0.6794055241246237, 0.5965736644521741]


class TestLossHistoryParity:
    def test_pristi_float64_matches_pre_refactor(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config()).fit(tiny_traffic_dataset)
        assert model.history["loss"] == pytest.approx(PRE_REFACTOR_PRISTI_F64, rel=0, abs=0)

    def test_pristi_float32_matches_pre_refactor(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(dtype="float32")).fit(tiny_traffic_dataset)
        assert model.history["loss"] == pytest.approx(PRE_REFACTOR_PRISTI_F32, rel=1e-6)

    def test_brits_matches_pre_refactor(self, tiny_traffic_dataset):
        model = BRITSImputer(window_length=12, hidden_size=16, epochs=3,
                             iterations_per_epoch=3, batch_size=4, seed=3)
        model.fit(tiny_traffic_dataset)
        assert model.history["loss"] == pytest.approx(PRE_REFACTOR_BRITS, rel=0, abs=0)


class TestSharedTrainer:
    def test_both_families_train_through_trainer(self, tiny_traffic_dataset):
        diffusion = PriSTI(_fast_config(epochs=1, iterations_per_epoch=1))
        diffusion.fit(tiny_traffic_dataset)
        windowed = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                                iterations_per_epoch=1, batch_size=4)
        windowed.fit(tiny_traffic_dataset)
        assert isinstance(diffusion.trainer, Trainer)
        assert isinstance(windowed.trainer, Trainer)
        # The diffusion trainer has an LR scheduler, the windowed one does not.
        assert diffusion.trainer.scheduler is not None
        assert windowed.trainer.scheduler is None

    def test_fit_returns_self_for_chaining(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(epochs=1, iterations_per_epoch=1))
        assert model.fit(tiny_traffic_dataset) is model
        brits = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=1, batch_size=4)
        assert brits.fit(tiny_traffic_dataset) is brits

    def test_trainer_persists_across_fit_calls(self, tiny_traffic_dataset):
        """fit(max_epochs=...) interrupts; a later fit resumes to the budget."""
        model = PriSTI(_fast_config(epochs=3))
        model.fit(tiny_traffic_dataset, max_epochs=1)
        assert len(model.history["loss"]) == 1
        first_trainer = model.trainer
        model.fit(tiny_traffic_dataset)
        assert model.trainer is first_trainer
        assert len(model.history["loss"]) == 3
        # The budget is exhausted: another fit is a no-op.
        model.fit(tiny_traffic_dataset)
        assert len(model.history["loss"]) == 3

    def test_interrupted_training_matches_straight_run(self, tiny_traffic_dataset):
        config = _fast_config(epochs=4, iterations_per_epoch=2)
        straight = PriSTI(config).fit(tiny_traffic_dataset)
        chunked = PriSTI(config)
        chunked.fit(tiny_traffic_dataset, max_epochs=2)
        chunked.fit(tiny_traffic_dataset)
        assert chunked.history["loss"] == straight.history["loss"]

    def test_exhausted_fit_does_not_refit_scaler(self, tiny_traffic_dataset, tiny_air_dataset):
        """A no-op fit must not desynchronise the scaler from the weights.

        With the epoch budget exhausted, fit on *different* data trains zero
        epochs — so it must also leave the normalisation statistics (fit on
        the original data) untouched, for both imputer families.
        """
        pristi = PriSTI(_fast_config(epochs=1, iterations_per_epoch=1))
        pristi.fit(tiny_traffic_dataset)
        brits = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=1, batch_size=4, seed=3)
        brits.fit(tiny_traffic_dataset)
        for model in (pristi, brits):
            mean, std = model.scaler.mean_, model.scaler.std_
            weights = {name: value.copy()
                       for name, value in model.network.state_dict().items()}
            assert model.fit(tiny_air_dataset) is model
            assert model.scaler.mean_ == mean and model.scaler.std_ == std
            for name, value in model.network.state_dict().items():
                assert np.array_equal(value, weights[name])

    def test_model_owned_training_timer(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(epochs=1, iterations_per_epoch=1))
        assert model.training_seconds == 0.0
        model.fit(tiny_traffic_dataset)
        assert model.training_seconds > 0.0


class TestCallbacks:
    def test_loss_logger_formats_like_verbose(self, tiny_traffic_dataset, capsys):
        model = PriSTI(_fast_config(epochs=1, iterations_per_epoch=1))
        model.fit(tiny_traffic_dataset, verbose=True)
        out = capsys.readouterr().out
        assert "[PriSTI] epoch 1/1 loss=" in out
        assert "lr=" in out
        brits = BRITSImputer(window_length=12, hidden_size=8, epochs=1,
                             iterations_per_epoch=1, batch_size=4)
        brits.fit(tiny_traffic_dataset, verbose=True)
        out = capsys.readouterr().out
        assert "[BRITS] epoch 1/1 loss=" in out
        assert "lr=" not in out  # no scheduler on the windowed family

    def test_early_stopping_halts_training(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(epochs=5, iterations_per_epoch=1))
        # A huge min_delta means no epoch ever counts as an improvement, so
        # patience=2 stops deterministically after epoch 3 (1 best + 2 stale).
        model.fit(tiny_traffic_dataset, callbacks=[EarlyStopping(patience=2, min_delta=1e9)])
        assert len(model.history["loss"]) == 3
        assert model.trainer.stop_requested
        # The stop request is scoped to that fit call: a later fit (without
        # the callback) trains the remaining budget.
        model.fit(tiny_traffic_dataset)
        assert len(model.history["loss"]) == 5
        assert not model.trainer.stop_requested

    def test_custom_callback_sees_every_epoch(self, tiny_traffic_dataset):
        seen = []

        class Recorder(Callback):
            def on_epoch_end(self, trainer, epoch, loss):
                seen.append((epoch, loss))

        model = PriSTI(_fast_config(epochs=2, iterations_per_epoch=1))
        model.fit(tiny_traffic_dataset, callbacks=[Recorder()])
        assert [epoch for epoch, _ in seen] == [1, 2]
        assert [loss for _, loss in seen] == model.history["loss"]

    def test_training_plan_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            TrainingPlan(0, lambda optimizer: 0.0)

    def test_loss_logger_custom_sink(self):
        lines = []
        logger = LossLogger("x", print_fn=lines.append)

        class FakeTrainer:
            scheduler = None
            total_epochs = 7

        logger.on_epoch_end(FakeTrainer(), 3, 0.5)
        assert lines == ["[x] epoch 3/7 loss=0.5000"]


MICRO = Profile(
    name="micro",
    aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
    traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
    window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
    diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
    deep_epochs=1, deep_iterations=2, batch_size=4,
    num_samples=2, forecast_epochs=1, forecast_iterations=2,
)


class TestModelOwnedTimers:
    def test_evaluate_method_reports_model_timers(self):
        from repro.experiments import build_dataset

        dataset = build_dataset("metr-la", "point", MICRO)
        metrics, _ = evaluate_method("BRITS", dataset, MICRO,
                                     dataset_name="metr-la", pattern="point")
        assert metrics["training_seconds"] > 0
        assert metrics["inference_seconds"] > 0

    def test_statistical_methods_report_model_timers(self):
        from repro.experiments import build_dataset

        dataset = build_dataset("metr-la", "point", MICRO)
        metrics, _ = evaluate_method("Mean", dataset, MICRO,
                                     dataset_name="metr-la", pattern="point")
        # Mean "trains" in microseconds but the model-owned timer records it.
        assert 0.0 <= metrics["training_seconds"] < 1.0
        assert metrics["inference_seconds"] >= 0.0
