"""Tests for missing-pattern injection and training mask strategies."""

import numpy as np
import pytest

from repro.data import (
    MaskStrategy,
    block_strategy,
    historical_strategy,
    hybrid_strategy,
    inject_block_missing,
    inject_point_missing,
    inject_simulated_failure,
    mask_sensors,
    missing_rate,
    point_strategy,
)


@pytest.fixture
def observed(rng):
    return rng.random((200, 8)) > 0.1


class TestEvaluationInjection:
    def test_point_missing_rate(self, observed, rng):
        new_observed, eval_mask = inject_point_missing(observed, rate=0.25, rng=rng)
        rate = eval_mask.sum() / observed.sum()
        assert 0.2 < rate < 0.3
        assert not np.any(new_observed & eval_mask)
        assert np.all(eval_mask <= observed)

    def test_point_missing_zero_rate(self, observed, rng):
        new_observed, eval_mask = inject_point_missing(observed, rate=0.0, rng=rng)
        assert eval_mask.sum() == 0
        assert np.array_equal(new_observed, observed)

    def test_block_missing_creates_runs(self, observed, rng):
        _, eval_mask = inject_block_missing(observed, point_rate=0.0, block_probability=0.01,
                                            min_length=5, max_length=10, rng=rng)
        # At least one column should contain a run of 5 consecutive masked steps.
        has_run = False
        for node in range(eval_mask.shape[1]):
            column = eval_mask[:, node].astype(int)
            run = np.convolve(column, np.ones(5, dtype=int), mode="valid")
            if np.any(run == 5):
                has_run = True
        assert has_run

    def test_simulated_failure_hits_target_rate(self, observed, rng):
        _, eval_mask = inject_simulated_failure(observed, target_rate=0.25, rng=rng)
        rate = eval_mask.sum() / observed.sum()
        assert rate >= 0.2

    def test_mask_sensors_hides_whole_column(self, observed):
        new_observed, eval_mask = mask_sensors(observed, [2])
        assert new_observed[:, 2].sum() == 0
        assert np.array_equal(eval_mask[:, 2], observed[:, 2])
        assert eval_mask[:, [0, 1, 3]].sum() == 0

    def test_missing_rate_helper(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[:5] = True
        assert missing_rate(mask) == pytest.approx(0.5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            inject_point_missing(np.ones(10))


class TestTrainingMaskStrategies:
    def test_point_strategy_subset(self, rng):
        observed = rng.random((6, 24)) > 0.1
        conditional = point_strategy(observed, rng=rng)
        assert np.all(conditional <= observed)

    def test_block_strategy_subset_and_erases(self, rng):
        observed = np.ones((6, 24), dtype=bool)
        conditional = block_strategy(observed, rng=rng)
        assert np.all(conditional <= observed)
        assert conditional.sum() < observed.sum()

    def test_historical_strategy_uses_other_mask(self, rng):
        observed = np.ones((4, 10), dtype=bool)
        historical = np.ones((4, 10), dtype=bool)
        historical[1, 2:6] = False
        conditional = historical_strategy(observed, historical, rng=rng)
        assert not conditional[1, 2:6].any()
        assert conditional[0].all()

    def test_historical_strategy_degenerate_falls_back(self, rng):
        observed = np.ones((3, 8), dtype=bool)
        historical = np.zeros((3, 8), dtype=bool)
        conditional = historical_strategy(observed, historical, rng=rng)
        assert np.all(conditional <= observed)

    def test_historical_strategy_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            historical_strategy(np.ones((3, 8), dtype=bool), np.ones((3, 9), dtype=bool))

    def test_hybrid_strategy_subset(self, rng):
        observed = rng.random((5, 20)) > 0.2
        for _ in range(5):
            conditional = hybrid_strategy(observed, rng=rng)
            assert np.all(conditional <= observed)

    def test_mask_strategy_wrapper_names(self):
        for name in MaskStrategy.VALID:
            strategy = MaskStrategy(name)
            assert name in repr(strategy)
        with pytest.raises(ValueError):
            MaskStrategy("bogus")

    def test_mask_strategy_callable(self, rng):
        observed = np.ones((4, 12), dtype=bool)
        strategy = MaskStrategy("point", rng=rng)
        conditional = strategy(observed)
        assert conditional.shape == observed.shape

    def test_strategies_are_stochastic(self):
        observed = np.ones((6, 30), dtype=bool)
        strategy = MaskStrategy("point", rng=np.random.default_rng(0))
        first = strategy(observed)
        second = strategy(observed)
        assert not np.array_equal(first, second)
