"""Value-level behaviour of the Tensor class and functional ops."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    as_tensor,
    cat,
    is_grad_enabled,
    mae_loss,
    masked_mae_loss,
    masked_mse_loss,
    mse_loss,
    no_grad,
    softmax,
    split,
    binary_cross_entropy,
)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_from_tensor_shares_semantics(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.allclose(a.data, b.data)

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_copy_is_detached(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.copy()
        assert not b.requires_grad
        b.data[0] = 99.0
        assert a.data[0] == 1.0


class TestArithmeticValues:
    def test_forward_values_match_numpy(self, rng):
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((3, 4))
        a, b = Tensor(a_data), Tensor(b_data)
        assert np.allclose((a + b).data, a_data + b_data)
        assert np.allclose((a - b).data, a_data - b_data)
        assert np.allclose((a * b).data, a_data * b_data)
        assert np.allclose((a / (b + 10.0)).data, a_data / (b_data + 10.0))
        assert np.allclose((-a).data, -a_data)

    def test_right_hand_operators(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((3.0 - a).data, [2.0, 1.0])
        assert np.allclose((2.0 / a).data, [2.0, 1.0])
        assert np.allclose((1.0 + a).data, [2.0, 3.0])

    def test_matmul_matches_numpy(self, rng):
        a_data = rng.standard_normal((2, 3, 4))
        b_data = rng.standard_normal((4, 5))
        assert np.allclose((Tensor(a_data) @ Tensor(b_data)).data, a_data @ b_data)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)) * 10)
        probabilities = softmax(x, axis=-1).data
        assert np.allclose(probabilities.sum(axis=-1), 1.0)
        assert np.all(probabilities >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        assert np.allclose(softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data)

    def test_mse_mae_losses(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        target = Tensor([1.0, 1.0, 1.0])
        assert mse_loss(prediction, target).item() == pytest.approx(5.0 / 3.0)
        assert mae_loss(prediction, target).item() == pytest.approx(1.0)

    def test_masked_losses_ignore_unmasked(self):
        prediction = Tensor([[1.0, 100.0]])
        target = Tensor([[0.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        assert masked_mae_loss(prediction, target, mask).item() == pytest.approx(1.0, rel=1e-6)
        assert masked_mse_loss(prediction, target, mask).item() == pytest.approx(1.0, rel=1e-6)

    def test_binary_cross_entropy_bounds(self):
        prediction = Tensor([0.9, 0.1])
        target = Tensor([1.0, 0.0])
        assert binary_cross_entropy(prediction, target).item() < 0.2


class TestStructuralOps:
    def test_cat_and_split_roundtrip(self, rng):
        a = Tensor(rng.standard_normal((2, 6)))
        parts = split(a, 3, axis=1)
        assert len(parts) == 3
        rebuilt = cat(parts, axis=1)
        assert np.allclose(rebuilt.data, a.data)

    def test_split_rejects_uneven(self):
        with pytest.raises(ValueError):
            split(Tensor(np.zeros((2, 5))), 2, axis=1)

    def test_getitem_values(self, rng):
        data = rng.standard_normal((4, 5))
        assert np.allclose(Tensor(data)[1:3, 2].data, data[1:3, 2])

    def test_no_grad_toggles_flag(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
