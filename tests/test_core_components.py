"""Tests for PriSTI's building blocks: config, interpolation, modules, network."""

import numpy as np
import pytest

from repro.core import (
    AuxiliaryInfo,
    ConditionalFeatureExtraction,
    NoiseEstimationLayer,
    PriSTIConfig,
    PriSTINetwork,
    interpolate_series,
    linear_interpolation,
)
from repro.tensor import Tensor


@pytest.fixture
def adjacency(rng):
    a = rng.random((5, 5))
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    return a


class TestConfig:
    def test_defaults_match_table_2(self):
        config = PriSTIConfig()
        assert config.channels == 64
        assert config.layers == 4
        assert config.heads == 8
        assert config.beta_min == pytest.approx(1e-4)
        assert config.beta_max == pytest.approx(0.2)
        assert config.schedule == "quadratic"

    def test_paper_presets(self):
        aqi = PriSTIConfig.paper("aqi36")
        assert aqi.window_length == 36
        assert aqi.num_diffusion_steps == 100
        assert aqi.virtual_nodes == 16
        traffic = PriSTIConfig.paper("metr-la")
        assert traffic.window_length == 24
        assert traffic.num_diffusion_steps == 50
        with pytest.raises(ValueError):
            PriSTIConfig.paper("imagenet")

    def test_validation(self):
        with pytest.raises(ValueError):
            PriSTIConfig(channels=10, heads=3)
        with pytest.raises(ValueError):
            PriSTIConfig(beta_min=0.3, beta_max=0.2)
        with pytest.raises(ValueError):
            PriSTIConfig(layers=0)
        with pytest.raises(ValueError):
            PriSTIConfig(parameterization="something")

    def test_variant_overrides(self):
        config = PriSTIConfig.fast()
        other = config.variant(channels=32, heads=4)
        assert other.channels == 32
        assert config.channels != 32 or config.channels == 16

    def test_ablation_variants(self):
        config = PriSTIConfig.fast()
        assert config.ablation("mix-STI").use_interpolation is False
        assert config.ablation("w/o CF").use_conditional_feature is False
        assert config.ablation("w/o spa").use_spatial is False
        assert config.ablation("w/o tem").use_temporal is False
        assert config.ablation("w/o MPNN").use_mpnn is False
        assert config.ablation("w/o Attn").use_spatial_attention is False
        assert config.ablation("PriSTI").use_interpolation is True
        with pytest.raises(ValueError):
            config.ablation("w/o everything")


class TestInterpolation:
    def test_fills_interior_gap_linearly(self):
        values = np.array([0.0, 0.0, 0.0, 3.0])
        mask = np.array([True, False, False, True])
        values[0] = 0.0
        result = interpolate_series(values, mask)
        assert np.allclose(result, [0.0, 1.0, 2.0, 3.0])

    def test_extrapolates_with_nearest(self):
        values = np.array([0.0, 5.0, 0.0, 0.0])
        mask = np.array([False, True, False, False])
        assert np.allclose(interpolate_series(values, mask), 5.0)

    def test_all_missing_gives_zeros(self):
        assert np.allclose(interpolate_series(np.array([7.0, 7.0]), np.array([False, False])), 0.0)

    def test_fully_observed_is_identity(self, rng):
        values = rng.standard_normal(10)
        assert np.allclose(interpolate_series(values, np.ones(10, dtype=bool)), values)

    def test_observed_positions_preserved(self, rng):
        values = rng.standard_normal(30)
        mask = rng.random(30) > 0.4
        if mask.sum() == 0:
            mask[0] = True
        result = interpolate_series(values * mask, mask)
        assert np.allclose(result[mask], values[mask])

    def test_batched_shapes(self, rng):
        values = rng.standard_normal((3, 4, 20))
        mask = rng.random((3, 4, 20)) > 0.3
        result = linear_interpolation(values, mask)
        assert result.shape == values.shape
        with pytest.raises(ValueError):
            linear_interpolation(values, mask[..., :10])
        with pytest.raises(ValueError):
            linear_interpolation(rng.standard_normal(5), np.ones(5, dtype=bool))


class TestModules:
    def test_auxiliary_info_shape(self, rng):
        auxiliary = AuxiliaryInfo(num_nodes=5, window_length=7, channels=8,
                                  temporal_dim=16, node_dim=4, rng=rng)
        out = auxiliary(batch_size=3)
        assert out.shape == (3, 5, 7, 8)

    def test_conditional_feature_shape(self, rng, adjacency):
        module = ConditionalFeatureExtraction(8, 2, adjacency, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 6, 8)))
        assert module(x).shape == (2, 5, 6, 8)

    def test_noise_estimation_layer_outputs(self, rng, adjacency):
        layer = NoiseEstimationLayer(8, 2, adjacency, num_nodes=5, virtual_nodes=3,
                                     diffusion_dim=8, rng=rng)
        hidden = Tensor(rng.standard_normal((2, 5, 6, 8)))
        prior = Tensor(rng.standard_normal((2, 5, 6, 8)))
        step = Tensor(rng.standard_normal((2, 8)))
        residual, skip = layer(hidden, prior, step)
        assert residual.shape == (2, 5, 6, 8)
        assert skip.shape == (2, 5, 6, 8)

    def test_noise_estimation_layer_requires_spatial_component(self, rng, adjacency):
        with pytest.raises(ValueError):
            NoiseEstimationLayer(8, 2, adjacency, num_nodes=5, virtual_nodes=3,
                                 diffusion_dim=8, use_spatial_attention=False,
                                 use_mpnn=False, rng=rng)

    def test_noise_estimation_ablation_flags(self, rng, adjacency):
        for flags in (dict(use_temporal=False), dict(use_spatial=False),
                      dict(use_mpnn=False), dict(use_spatial_attention=False),
                      dict(use_conditional_feature=False)):
            layer = NoiseEstimationLayer(8, 2, adjacency, num_nodes=5, virtual_nodes=5,
                                         diffusion_dim=8, rng=rng, **flags)
            hidden = Tensor(rng.standard_normal((1, 5, 4, 8)))
            prior = None if flags.get("use_conditional_feature") is False else hidden
            residual, skip = layer(hidden, prior, Tensor(rng.standard_normal((1, 8))))
            assert residual.shape == (1, 5, 4, 8)


class TestPriSTINetwork:
    def _network(self, rng, adjacency, **overrides):
        config = PriSTIConfig.fast(window_length=6, channels=8, heads=2, layers=2,
                                   num_diffusion_steps=10, **overrides)
        return PriSTINetwork(config, num_nodes=5, adjacency=adjacency, rng=rng), config

    def test_output_shape(self, rng, adjacency):
        network, _ = self._network(rng, adjacency)
        noisy = rng.standard_normal((3, 5, 6))
        condition = rng.standard_normal((3, 5, 6))
        out = network(noisy, condition, np.array([0, 3, 9]))
        assert out.shape == (3, 5, 6)

    def test_zero_initialised_output(self, rng, adjacency):
        network, _ = self._network(rng, adjacency)
        out = network(rng.standard_normal((1, 5, 6)), rng.standard_normal((1, 5, 6)), np.array([2]))
        assert np.allclose(out.data, 0.0)

    def test_gradients_reach_all_parameters(self, rng, adjacency):
        network, _ = self._network(rng, adjacency)
        out = network(rng.standard_normal((2, 5, 6)),
                      rng.standard_normal((2, 5, 6)), np.array([1, 4]))
        (out * out).sum().backward()
        named = dict(network.named_parameters())
        with_grad = [name for name, parameter in named.items() if parameter.grad is not None]
        # The final zero-initialised projection blocks gradient to nothing else
        # only if the whole path is dead; the bulk of parameters must get grads.
        assert len(with_grad) > len(named) * 0.5

    def test_ablation_without_conditional_feature(self, rng, adjacency):
        network, _ = self._network(rng, adjacency, use_conditional_feature=False)
        assert network.conditional_feature is None
        out = network(rng.standard_normal((1, 5, 6)), rng.standard_normal((1, 5, 6)), np.array([0]))
        assert out.shape == (1, 5, 6)

    def test_adjacency_shape_validation(self, rng):
        config = PriSTIConfig.fast(window_length=6, channels=8, heads=2)
        with pytest.raises(ValueError):
            PriSTINetwork(config, num_nodes=5, adjacency=np.eye(4), rng=rng)

    def test_config_type_validation(self, rng, adjacency):
        with pytest.raises(TypeError):
            PriSTINetwork({"channels": 8}, num_nodes=5, adjacency=adjacency, rng=rng)

    def test_mask_channel_changes_output(self, rng, adjacency):
        network, _ = self._network(rng, adjacency)
        # Give the network some non-trivial output first.
        network.output_projection2.weight.data[...] = rng.standard_normal(
            network.output_projection2.weight.shape) * 0.1
        noisy = rng.standard_normal((1, 5, 6))
        condition = rng.standard_normal((1, 5, 6))
        full_mask = np.ones((1, 5, 6))
        half_mask = np.array(full_mask)
        half_mask[:, :, 3:] = 0.0
        out_full = network(noisy, condition, np.array([1]), conditional_mask=full_mask)
        out_half = network(noisy, condition, np.array([1]), conditional_mask=half_mask)
        assert not np.allclose(out_full.data, out_half.data)
