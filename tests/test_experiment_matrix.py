"""Tests for the declarative, resumable serving experiment matrix.

Pins the enumeration contract (deterministic cell order, inline worker
collapse, workload-derived seeds), the resume contract (a killed run picks
up from its manifests and produces a run table byte-identical to an
uninterrupted run), and the comparison step.
"""

import json

import pytest

from repro.experiments import (
    ExperimentMatrix,
    MatrixCell,
    ServingCellRunner,
    compare_run_tables,
    format_comparison,
)
from repro.experiments.matrix import RUN_TABLE_COLUMNS, render_run_table_csv


def _tiny_matrix(**overrides):
    """The smallest matrix that still exercises two modes and two sizes."""
    defaults = dict(modes=("inline", "thread"), workers=(2,),
                    batch_sizes=(2, 4), repetitions=1, base_seed=5,
                    requests_per_cell=2)
    defaults.update(overrides)
    return ExperimentMatrix(**defaults)


class TestEnumeration:
    def test_cells_are_deterministic_and_ordered(self):
        matrix = _tiny_matrix()
        ids = [cell.cell_id for cell in matrix.cells()]
        assert ids == [cell.cell_id for cell in matrix.cells()]
        assert ids == [
            "steady-inline-w0-s1-b2-float64-r0",
            "steady-inline-w0-s1-b4-float64-r0",
            "steady-thread-w2-s1-b2-float64-r0",
            "steady-thread-w2-s1-b4-float64-r0",
        ]

    def test_inline_cells_collapse_worker_levels(self):
        matrix = _tiny_matrix(modes=("inline",), workers=(1, 2, 4),
                              batch_sizes=(2,))
        assert [cell.cell_id for cell in matrix.cells()] == [
            "steady-inline-w0-s1-b2-float64-r0",
        ]

    def test_seed_ignores_mode_and_workers(self):
        shared = dict(scenario="burst", shards=2, batch_size=4,
                      dtype="float64", repetition=1, base_seed=9)
        inline = MatrixCell(mode="inline", workers=0, **shared)
        thread = MatrixCell(mode="thread", workers=4, **shared)
        assert inline.seed == thread.seed
        other = MatrixCell(mode="inline", workers=0,
                           **{**shared, "repetition": 2})
        assert other.seed != inline.seed

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            ExperimentMatrix(modes=("fiber",))
        with pytest.raises(ValueError):
            ExperimentMatrix(scenarios=("spiky",))
        with pytest.raises(ValueError):
            ExperimentMatrix(repetitions=0)


class TestComparison:
    ROW = {"cell_id": "a", "checksum": "f00", "requests": 4, "batches": 2,
           "status": "completed"}

    def test_identical_tables_match(self):
        verdict = compare_run_tables([dict(self.ROW)], [dict(self.ROW)])
        assert verdict["matches"]
        assert "matches baseline" in format_comparison(verdict)

    def test_field_diff_and_missing_cells_surface(self):
        current = [dict(self.ROW, checksum="bad")]
        baseline = [dict(self.ROW), dict(self.ROW, cell_id="b")]
        verdict = compare_run_tables(current, baseline)
        assert not verdict["matches"]
        assert verdict["diffs"] == [{"cell_id": "a", "field": "checksum",
                                     "baseline": "f00", "current": "bad"}]
        assert verdict["missing"] == ["b"]
        report = format_comparison(verdict)
        assert "a: checksum" in report and "b: missing" in report


class TestExecution:
    def test_run_resume_and_bit_identity(self, tmp_path):
        """The headline acceptance criterion: a run killed mid-matrix,
        resumed, finishes the remaining cells and emits a run table
        byte-identical to an uninterrupted run of the same matrix."""
        matrix = _tiny_matrix()

        # Uninterrupted reference run.
        reference = matrix.run(tmp_path / "reference")
        assert reference["cells_executed"] == 4
        with open(reference["run_table_csv"], "rb") as handle:
            reference_table = handle.read()

        # Interrupted run: die after the second completed cell.
        class Killed(RuntimeError):
            pass

        executed = []

        def die_after_two(cell, outcome):
            if outcome == "run":
                executed.append(cell.cell_id)
                if len(executed) == 2:
                    raise Killed(cell.cell_id)

        with pytest.raises(Killed):
            matrix.run(tmp_path / "resumed", progress=die_after_two)

        # Resume completes only the remaining cells...
        summary = matrix.run(tmp_path / "resumed")
        assert summary["cells_skipped"] == 2
        assert summary["cells_executed"] == 2
        with open(summary["run_table_csv"], "rb") as handle:
            resumed_table = handle.read()
        # ...and the regenerated table is byte-identical to the reference.
        assert resumed_table == reference_table
        # A third pass is a pure no-op with the same bytes again.
        third = matrix.run(tmp_path / "resumed")
        assert third["cells_executed"] == 0
        with open(third["run_table_csv"], "rb") as handle:
            assert handle.read() == resumed_table

    def test_stale_manifest_is_not_reused(self, tmp_path):
        matrix = _tiny_matrix(modes=("inline",), batch_sizes=(2,))
        summary = matrix.run(tmp_path)
        assert summary["cells_executed"] == 1
        [cell] = matrix.cells()
        path = tmp_path / "manifests" / f"{cell.cell_id}.json"
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["cell"]["seed"] = manifest["cell"]["seed"] + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        assert matrix.run(tmp_path)["cells_executed"] == 1

    def test_output_dir_is_pinned_to_one_matrix(self, tmp_path):
        _tiny_matrix(modes=("inline",), batch_sizes=(2,)).run(tmp_path)
        other = _tiny_matrix(modes=("inline",), batch_sizes=(4,))
        with pytest.raises(ValueError):
            other.run(tmp_path)

    def test_checksums_are_mode_invariant(self, tmp_path):
        """The matrix doubles as a bit-identity harness: executor variants
        of the same workload must produce the same response checksum."""
        rows = _tiny_matrix().run(tmp_path)["rows"]
        by_id = {row["cell_id"]: row for row in rows}
        for batch in (2, 4):
            inline = by_id[f"steady-inline-w0-s1-b{batch}-float64-r0"]
            thread = by_id[f"steady-thread-w2-s1-b{batch}-float64-r0"]
            assert inline["checksum"] == thread["checksum"]
            assert inline["seed"] == thread["seed"]

    def test_manifest_carries_metrics_snapshot(self, tmp_path):
        matrix = _tiny_matrix(modes=("inline",), batch_sizes=(2,))
        matrix.run(tmp_path)
        [cell] = matrix.cells()
        with open(tmp_path / "manifests" / f"{cell.cell_id}.json",
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["status"] == "completed"
        assert manifest["metrics"]["service.requests.served"] == 2
        assert "pool.batches.executed" in manifest["metrics"]
        assert manifest["stats_keys"] == sorted(manifest["metrics"])

    def test_burst_scenario_coalesces(self, tmp_path):
        matrix = _tiny_matrix(modes=("inline",), scenarios=("burst",),
                              batch_sizes=(4,), requests_per_cell=4)
        rows = matrix.run(tmp_path)["rows"]
        assert rows[0]["requests"] == 4
        assert rows[0]["batches"] < 4        # burst traffic shares flushes

    def test_render_run_table_csv_columns(self):
        row = {column: 0 for column in RUN_TABLE_COLUMNS}
        text = render_run_table_csv([row])
        header, line, trailer = text.split("\n")
        assert header == ",".join(RUN_TABLE_COLUMNS)
        assert trailer == ""

    def test_runner_rejects_oversized_shard_request(self, tmp_path):
        runner = ServingCellRunner(tmp_path)
        cell = MatrixCell(scenario="steady", mode="inline", workers=0,
                          shards=ServingCellRunner.MAX_SHARDS + 1,
                          batch_size=2, dtype="float64", repetition=0,
                          base_seed=0)
        with pytest.raises(ValueError):
            runner.requests(cell)
