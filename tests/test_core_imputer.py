"""Integration tests for the PriSTI imputer (training + sampling loops)."""

import numpy as np
import pytest

from repro.core import ImputationResult, PriSTI, PriSTIConfig


def _fast_config(**overrides):
    defaults = dict(window_length=12, epochs=2, iterations_per_epoch=2,
                    num_diffusion_steps=8, num_samples=3, batch_size=4)
    defaults.update(overrides)
    return PriSTIConfig.fast(**defaults)


class TestFitAndImpute:
    def test_fit_returns_self_and_records_history(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config())
        returned = model.fit(tiny_traffic_dataset)
        assert returned is model
        assert len(model.history["loss"]) == 2
        assert all(np.isfinite(loss) for loss in model.history["loss"])

    def test_impute_before_fit_raises(self, tiny_traffic_dataset):
        with pytest.raises(RuntimeError):
            PriSTI(_fast_config()).impute(tiny_traffic_dataset)

    def test_impute_result_structure(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config())
        model.fit(tiny_traffic_dataset)
        result = model.impute(tiny_traffic_dataset, segment="test", num_samples=3)
        assert isinstance(result, ImputationResult)
        test_length = tiny_traffic_dataset.segment("test")[0].shape[0]
        assert result.median.shape == (test_length, tiny_traffic_dataset.num_nodes)
        assert result.samples.shape == (3, test_length, tiny_traffic_dataset.num_nodes)
        assert np.all(np.isfinite(result.samples))

    def test_observed_values_passed_through(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config())
        model.fit(tiny_traffic_dataset)
        result = model.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        values, observed, evaluation = tiny_traffic_dataset.segment("test")
        visible = observed & ~evaluation
        assert np.allclose(result.median[visible], values[visible])

    def test_metrics_are_finite(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config())
        model.fit(tiny_traffic_dataset)
        metrics = model.evaluate(tiny_traffic_dataset, segment="test", num_samples=2)
        assert set(metrics) == {"mae", "mse", "rmse", "crps"}
        assert all(np.isfinite(v) and v >= 0 for v in metrics.values())

    def test_epsilon_parameterization_runs(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(parameterization="epsilon"))
        model.fit(tiny_traffic_dataset)
        metrics = model.evaluate(tiny_traffic_dataset, segment="test", num_samples=2)
        assert np.isfinite(metrics["mae"])

    def test_ddim_sampling_runs(self, tiny_traffic_dataset):
        model = PriSTI(_fast_config(ddim_steps=4))
        model.fit(tiny_traffic_dataset)
        result = model.impute(tiny_traffic_dataset, segment="test", num_samples=2)
        assert np.all(np.isfinite(result.samples))

    def test_untrained_x0_residual_close_to_interpolation(self, tiny_traffic_dataset):
        """With the zero-initialised head the sampler reduces to the interpolated prior."""
        from repro.baselines import LinearInterpolationImputer

        config = _fast_config(epochs=1, iterations_per_epoch=1, learning_rate=1e-12,
                              num_diffusion_steps=12, window_length=16)
        model = PriSTI(config)
        model.fit(tiny_traffic_dataset)
        pristi_mae = model.evaluate(tiny_traffic_dataset, "test", num_samples=4)["mae"]
        linear_mae = LinearInterpolationImputer().fit(tiny_traffic_dataset) \
            .evaluate(tiny_traffic_dataset, "test")["mae"]
        # Windowed interpolation cannot be better than a perfect global one by
        # a large margin, nor should the diffusion wrapper destroy it.
        assert pristi_mae < 5 * max(linear_mae, 1e-6) + 5.0

    def test_fit_rejects_non_dataset(self):
        with pytest.raises(TypeError):
            PriSTI(_fast_config()).fit("not a dataset")

    def test_ablation_variant_trains(self, tiny_traffic_dataset):
        config = _fast_config().ablation("w/o CF")
        model = PriSTI(config)
        model.fit(tiny_traffic_dataset)
        metrics = model.evaluate(tiny_traffic_dataset, segment="test", num_samples=2)
        assert np.isfinite(metrics["mae"])

    def test_mask_strategy_variants_train(self, tiny_air_dataset):
        for strategy in ("point", "block", "hybrid", "hybrid-historical"):
            config = _fast_config(mask_strategy=strategy, epochs=1, iterations_per_epoch=1)
            model = PriSTI(config)
            model.fit(tiny_air_dataset)
            assert len(model.history["loss"]) == 1
