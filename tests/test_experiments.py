"""Tests for the experiment harness: profiles, factories and runners.

Runner tests use a hand-built micro profile so that the full train/evaluate
cycle stays fast; they verify the plumbing (rows, columns, finite values), not
the quality of the numbers.
"""

import pytest

from repro.core import PriSTI
from repro.baselines import Imputer
from repro.experiments import (
    FAST,
    FULL,
    Profile,
    build_dataset,
    build_method,
    build_pristi_config,
    get_profile,
    run_ablation_study,
    run_downstream_forecasting,
    run_imputation_benchmark,
    run_missing_rate_sweep,
    run_sensor_failure,
    run_time_costs,
)
from repro.metrics import ResultTable

MICRO = Profile(
    name="micro",
    aqi_nodes=6, aqi_days=6, aqi_steps_per_day=24,
    traffic_nodes=6, traffic_days=5, traffic_steps_per_day=24,
    window_length=12, channels=8, layers=1, heads=2, virtual_nodes=4,
    diffusion_epochs=1, diffusion_iterations=2, diffusion_steps=6,
    deep_epochs=1, deep_iterations=2, batch_size=4,
    num_samples=2, forecast_epochs=1, forecast_iterations=2,
)


class TestProfilesAndFactories:
    def test_get_profile_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "fast"
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile().name == "full"
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile().name == "smoke"
        with pytest.raises(ValueError):
            get_profile("bogus")

    def test_full_profile_is_larger(self):
        assert FULL.traffic_nodes > FAST.traffic_nodes
        assert FULL.diffusion_epochs > FAST.diffusion_epochs

    def test_build_dataset_names(self):
        for name in ("aqi36", "metr-la", "pems-bay"):
            dataset = build_dataset(name, "point", MICRO)
            assert dataset.num_nodes == 6
        with pytest.raises(ValueError):
            build_dataset("mnist", "point", MICRO)

    def test_build_pristi_config_respects_profile(self):
        config = build_pristi_config(MICRO, "metr-la", "block")
        assert config.channels == MICRO.channels
        assert config.window_length == MICRO.window_length
        assert config.mask_strategy == "hybrid"
        point_config = build_pristi_config(MICRO, "metr-la", "point")
        assert point_config.mask_strategy == "point"
        aqi_config = build_pristi_config(MICRO, "aqi36", "failure")
        assert aqi_config.mask_strategy == "hybrid-historical"

    def test_build_method_types(self):
        assert isinstance(build_method("PriSTI", MICRO), PriSTI)
        assert isinstance(build_method("Mean", MICRO), Imputer)
        assert isinstance(build_method("BRITS", MICRO), Imputer)
        with pytest.raises(ValueError):
            build_method("AlphaFold", MICRO)


class TestRunners:
    def test_imputation_benchmark_structure(self):
        table = run_imputation_benchmark(
            methods=("Mean", "Lin-ITP"),
            grid=(("metr-la", "point"),),
            profile=MICRO,
        )
        assert isinstance(table, ResultTable)
        assert set(table.rows()) == {"Mean", "Lin-ITP"}
        assert "metr-la/point/MAE" in table.columns()
        assert table.best_row("metr-la/point/MAE") == "Lin-ITP"

    def test_ablation_study_structure(self):
        table = run_ablation_study(
            variants=("PriSTI", "w/o spa"),
            grid=(("metr-la", "point"),),
            profile=MICRO,
        )
        assert set(table.rows()) == {"PriSTI", "w/o spa"}

    def test_missing_rate_sweep_structure(self):
        table = run_missing_rate_sweep(
            methods=("Lin-ITP", "PriSTI"), rates=(0.3, 0.7), pattern="point", profile=MICRO,
        )
        assert set(table.rows()) == {"Lin-ITP", "PriSTI"}
        assert set(table.columns()) == {"30%", "70%"}

    def test_sensor_failure_structure(self):
        table = run_sensor_failure(methods=("KNN", "PriSTI"), profile=MICRO)
        assert set(table.rows()) == {"KNN", "PriSTI"}
        assert set(table.columns()) == {"highest-connectivity", "lowest-connectivity"}

    def test_time_costs_structure(self):
        table = run_time_costs(methods=("Mean", "BRITS"), datasets=(("metr-la", "point"),),
                               profile=MICRO)
        assert "metr-la/train-s" in table.columns()
        values = [table.cell(row, "metr-la/train-s")[0] for row in table.rows()]
        assert all(v >= 0 for v in values)

    def test_downstream_forecasting_structure(self):
        table = run_downstream_forecasting(methods=("Lin-ITP",), profile=MICRO)
        assert "Ori." in table.rows()
        assert "Lin-ITP" in table.rows()
        assert {"MAE", "RMSE"} <= set(table.columns())
