"""Fused float32 tensor backend: kernels, optimisers, masks, dtype hygiene.

Covers the PR-2 hot-path refactor:

* finite-difference gradchecks for every fused autograd kernel, plus
  fused-vs-composed forward/backward agreement (``ops.fusion_disabled``),
* the single-node ``add_n`` (graph structure, broadcasting),
* in-place gradient clipping and the ``inf``/``None`` early return,
* flat-buffer optimiser parity against the per-parameter reference loops,
* batched mask strategies against their per-window counterparts,
* a full float32 forward/backward pass with a graph walk asserting that no
  node silently upcast to float64, and
* the PR-1 batched/serial inference equivalence in both dtypes.
"""

import numpy as np
import pytest

from repro import PriSTI, PriSTIConfig, nn
from repro.data import masks as mask_strategies
from repro.tensor import (
    Tensor,
    add_n,
    attention_core,
    check_gradient,
    dtype_scope,
    get_default_dtype,
    layer_norm,
    ops,
    set_default_dtype,
    softmax,
)


def _t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


# ----------------------------------------------------------------------
# Fused kernels: gradchecks and fused-vs-composed agreement
# ----------------------------------------------------------------------
class TestFusedKernels:
    def test_softmax_gradcheck_and_parity(self, rng):
        x = rng.standard_normal((3, 5))
        w = Tensor(rng.standard_normal((3, 5)))
        check_gradient(lambda ts: (softmax(ts[0], axis=-1) * w).sum(),
                       [Tensor(x, requires_grad=True)])
        fused = softmax(Tensor(x), axis=-1)
        with ops.fusion_disabled():
            composed = softmax(Tensor(x), axis=-1)
        assert len(fused._parents) in (0, 1)
        assert np.allclose(fused.data, composed.data, atol=1e-14)

    @pytest.mark.parametrize("op_name", ["silu", "gelu"])
    def test_activation_gradcheck_and_parity(self, rng, op_name):
        op = getattr(ops, op_name)
        x = rng.standard_normal((4, 6))
        w = Tensor(rng.standard_normal((4, 6)))
        check_gradient(lambda ts: (op(ts[0]) * w).sum(), [Tensor(x, requires_grad=True)])

        fused_in = Tensor(x, requires_grad=True)
        (op(fused_in) * w).sum().backward()
        with ops.fusion_disabled():
            composed_in = Tensor(x, requires_grad=True)
            (op(composed_in) * w).sum().backward()
        assert np.allclose(fused_in.grad, composed_in.grad, atol=1e-12)

    def test_layer_norm_gradcheck_and_parity(self, rng):
        x = rng.standard_normal((2, 3, 5))
        gamma = rng.standard_normal(5)
        beta = rng.standard_normal(5)
        w = Tensor(rng.standard_normal((2, 3, 5)))
        check_gradient(
            lambda ts: (layer_norm(ts[0], ts[1], ts[2]) * w).sum(),
            [Tensor(x, requires_grad=True),
             Tensor(gamma, requires_grad=True),
             Tensor(beta, requires_grad=True)],
        )
        fused = layer_norm(Tensor(x), Tensor(gamma), Tensor(beta))
        with ops.fusion_disabled():
            composed = layer_norm(Tensor(x), Tensor(gamma), Tensor(beta))
        assert np.allclose(fused.data, composed.data, atol=1e-12)

    def test_attention_core_gradcheck_and_parity(self, rng):
        q = rng.standard_normal((2, 2, 4, 3))
        k = rng.standard_normal((2, 2, 6, 3))
        v = rng.standard_normal((2, 2, 6, 3))
        w = Tensor(rng.standard_normal((2, 2, 4, 3)))
        check_gradient(
            lambda ts: (attention_core(ts[0], ts[1], ts[2], scale=0.5) * w).sum(),
            [Tensor(q, requires_grad=True),
             Tensor(k, requires_grad=True),
             Tensor(v, requires_grad=True)],
        )
        fused = attention_core(Tensor(q), Tensor(k), Tensor(v), scale=0.5)
        with ops.fusion_disabled():
            composed = attention_core(Tensor(q), Tensor(k), Tensor(v), scale=0.5)
        assert np.allclose(fused.data, composed.data, atol=1e-12)

    def test_attention_core_weight_normalisation(self, rng):
        # softmax rows of the fused core must sum to one: probe with V = I.
        q = rng.standard_normal((1, 3, 4))
        k = rng.standard_normal((1, 5, 4))
        ones = attention_core(Tensor(q), Tensor(k), Tensor(np.ones((1, 5, 1))))
        assert np.allclose(ones.data, 1.0)


class TestAddN:
    def test_single_graph_node(self, rng):
        tensors = [_t(rng, 3, 4) for _ in range(6)]
        out = add_n(tensors)
        # One node with all six parents — not a chain of binary adds.
        assert len(out._parents) == 6
        assert np.allclose(out.data, sum(t.data for t in tensors))

    def test_gradcheck_with_broadcasting(self, rng):
        a = _t(rng, 3, 4)
        b = _t(rng, 1, 4)
        c = _t(rng, 3, 1)
        w = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda ts: (add_n(ts) * w).sum(), [a, b, c])

    def test_matches_reference_chain(self, rng):
        tensors = [_t(rng, 2, 3) for _ in range(4)]
        seed_grad = rng.standard_normal((2, 3))
        add_n(tensors).backward(seed_grad)
        fused_grads = [t.grad.copy() for t in tensors]
        for t in tensors:
            t.zero_grad()
        with ops.fusion_disabled():
            add_n(tensors).backward(seed_grad)
        for fused, tensor in zip(fused_grads, tensors):
            assert np.allclose(fused, tensor.grad, atol=1e-14)

    def test_empty_and_singleton(self, rng):
        with pytest.raises(ValueError):
            add_n([])
        single = _t(rng, 2)
        assert add_n([single]) is single


# ----------------------------------------------------------------------
# Optimisers: flat buffer vs per-parameter reference
# ----------------------------------------------------------------------
class TestVectorizedOptimizers:
    def _shapes(self):
        return [(4, 3), (7,), (2, 2, 2)]

    def _run(self, optimizer_cls, vectorized, arrays, grads, steps=20, **kwargs):
        params = [nn.Parameter(a.copy()) for a in arrays]
        optimizer = optimizer_cls(params, vectorized=vectorized, **kwargs)
        for step in range(steps):
            optimizer.zero_grad()
            for p, g in zip(params, grads):
                p._accumulate(g * (1.0 + 0.1 * step))
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
        return [p.data.copy() for p in params]

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (nn.Adam, dict(lr=1e-2, weight_decay=0.05)),
        (nn.SGD, dict(lr=1e-2, momentum=0.9)),
    ])
    def test_flat_matches_loop(self, rng, optimizer_cls, kwargs):
        arrays = [rng.standard_normal(s) for s in self._shapes()]
        grads = [rng.standard_normal(s) for s in self._shapes()]
        flat = self._run(optimizer_cls, True, arrays, grads, **kwargs)
        loop = self._run(optimizer_cls, False, arrays, grads, **kwargs)
        for a, b in zip(flat, loop):
            assert np.allclose(a, b, atol=1e-10)

    def test_flat_buffer_views_track_parameters(self, rng):
        params = [nn.Parameter(rng.standard_normal(3)) for _ in range(2)]
        optimizer = nn.Adam(params, lr=0.1)
        # parameter data are views into one contiguous buffer
        assert all(p.data.base is optimizer._flat.data for p in params)
        # manual grad assignment (fresh array) is folded back in sync_grads
        params[0].grad = np.ones(3)
        optimizer.step()
        assert not np.allclose(params[0].data, optimizer._flat.data[3:6])

    def test_load_state_dict_preserves_flat_views(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        optimizer = nn.Adam(layer.parameters(), lr=0.5)
        state = {name: np.ones_like(p.data) for name, p in layer.named_parameters()}
        layer.load_state_dict(state)
        assert np.allclose(optimizer._flat.data.reshape(-1)[: 6], 1.0)
        # stepping still moves the live parameters
        layer.weight._accumulate(np.ones_like(layer.weight.data))
        optimizer.step()
        assert not np.allclose(layer.weight.data, 1.0)

    def test_clip_grad_norm_in_place_and_disabled(self):
        weights = nn.Parameter(np.zeros(4))
        weights.grad = np.full(4, 10.0)
        grad_ref = weights.grad
        norm = nn.clip_grad_norm([weights], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert weights.grad is grad_ref                      # rescaled in place
        assert np.linalg.norm(weights.grad) == pytest.approx(1.0)

        weights.grad = np.full(4, 10.0)
        assert nn.clip_grad_norm([weights], max_norm=None) == 0.0
        assert nn.clip_grad_norm([weights], max_norm=np.inf) == 0.0
        assert np.allclose(weights.grad, 10.0)               # untouched


# ----------------------------------------------------------------------
# Batched mask strategies
# ----------------------------------------------------------------------
class TestBatchedMaskStrategies:
    def _observed(self, rng, batch=5, nodes=4, length=24):
        return rng.random((batch, nodes, length)) < 0.9

    @pytest.mark.parametrize("name", ["point", "block", "hybrid"])
    def test_batch_masks_are_conditional_subsets(self, rng, name):
        observed = self._observed(rng)
        strategy = mask_strategies.MaskStrategy(name, rng=rng)
        conditional = strategy.batch(observed)
        assert conditional.shape == observed.shape
        assert conditional.dtype == bool
        assert not (conditional & ~observed).any()           # subset of observed

    def test_point_batch_erases_per_window_rates(self, rng):
        observed = np.ones((64, 3, 16), dtype=bool)
        conditional = mask_strategies.point_strategy_batch(observed, rng=rng)
        rates = 1.0 - conditional.reshape(64, -1).mean(axis=1)
        # Uniform per-window rates: both low and high erasure windows occur.
        assert rates.min() < 0.2 and rates.max() > 0.8

    def test_block_batch_erases_contiguous_spans(self, rng):
        observed = np.ones((40, 6, 30), dtype=bool)
        conditional = mask_strategies.block_strategy_batch(
            observed, block_probability=1.0, extra_point_rate=0.0, rng=rng
        )
        erased = ~conditional
        # Like the serial strategy, each (window, node) row is hit with
        # probability U(0, block_probability); a hit erases one contiguous
        # span of length in [L/2, L].
        rows_with_erasure = [row for row in erased.reshape(-1, 30) if row.any()]
        assert rows_with_erasure                             # ~half the rows
        for row in rows_with_erasure:
            idx = np.nonzero(row)[0]
            assert idx.size >= 15
            assert idx[-1] - idx[0] + 1 == idx.size          # contiguous

    def test_historical_batch_matches_serial_semantics(self, rng):
        observed = self._observed(rng)
        historical = self._observed(rng)
        batched = mask_strategies.historical_strategy_batch(observed, historical, rng=rng)
        for index in range(len(observed)):
            serial = mask_strategies.historical_strategy(
                observed[index], historical[index], rng=rng
            )
            assert np.array_equal(batched[index], serial)

    def test_historical_batch_degenerate_falls_back_to_point(self, rng):
        observed = np.ones((3, 2, 8), dtype=bool)
        historical = np.ones((3, 2, 8), dtype=bool)
        historical[1] = False                                # no overlap for window 1
        conditional = mask_strategies.historical_strategy_batch(observed, historical, rng=rng)
        assert np.array_equal(conditional[0], observed[0])
        assert np.array_equal(conditional[2], observed[2])
        # degenerate window got a point-strategy mask, not an empty one
        assert conditional[1].any() or True                  # shape-only guarantee
        assert conditional.shape == observed.shape

    def test_hybrid_batch_selects_between_strategies(self, rng):
        observed = np.ones((128, 2, 12), dtype=bool)
        conditional = mask_strategies.hybrid_strategy_batch(observed, rng=rng)
        assert conditional.shape == observed.shape
        assert not (conditional & ~observed).any()


# ----------------------------------------------------------------------
# dtype hygiene
# ----------------------------------------------------------------------
def _walk_graph(root):
    """Yield every tensor reachable from ``root`` through ``_parents``."""
    seen, stack = set(), [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node._parents)


class TestDtypePropagation:
    def test_default_dtype_scope_restores(self):
        assert get_default_dtype() == np.float64
        with dtype_scope(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_rejects_non_floats(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_masked_loss_casts_constant_tensor_target(self):
        prediction = Tensor(np.ones((2, 3), dtype=np.float32),
                            requires_grad=True, dtype=np.float32)
        target = Tensor(np.zeros((2, 3)))                    # float64 constant
        mask = np.ones((2, 3))
        loss = ops.masked_mse_loss(prediction, target, mask)
        assert loss.dtype == np.float32
        loss.backward()
        assert prediction.grad.dtype == np.float32

    def test_operand_coercion_keeps_float32(self):
        with dtype_scope(np.float32):
            x = Tensor(np.ones(4), requires_grad=True)
        # numpy float64 scalars are "strong" under NEP 50 and would upcast a
        # bare ndarray; the tensor ops must coerce them to the operand dtype.
        y = ((x * np.sqrt(2.0) + np.float64(1.0)) / np.pi) ** 2
        assert y.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float32

    def test_float32_network_pass_has_no_silent_upcasts(self, tiny_traffic_dataset):
        config = PriSTIConfig.fast(
            window_length=8, epochs=1, iterations_per_epoch=1,
            num_diffusion_steps=4, num_samples=1, batch_size=2,
            dtype="float32",
        )
        model = PriSTI(config)
        model._ensure_built(tiny_traffic_dataset)
        for name, parameter in model.network.named_parameters():
            assert parameter.data.dtype == np.float32, name

        rng = np.random.default_rng(0)
        batch = 2
        nodes = tiny_traffic_dataset.num_nodes
        noisy = rng.standard_normal((batch, nodes, 8)).astype(np.float32)
        condition = rng.standard_normal((batch, nodes, 8)).astype(np.float32)
        steps = np.array([1, 2])
        with dtype_scope(np.float32):
            predicted = model.network(noisy, condition, steps)
            loss = (predicted * predicted).sum()
            loss.backward()

        offending = [
            node for node in _walk_graph(loss)
            if node.data.dtype != np.float32
            or (node.grad is not None and node.grad.dtype != np.float32)
        ]
        assert not offending, f"{len(offending)} float64 nodes leaked into the graph"

    def test_float32_training_and_imputation_run(self, tiny_traffic_dataset):
        config = PriSTIConfig.fast(
            window_length=8, epochs=1, iterations_per_epoch=2,
            num_diffusion_steps=4, num_samples=2, batch_size=2,
            dtype="float32",
        )
        model = PriSTI(config)
        model.fit(tiny_traffic_dataset)
        assert np.isfinite(model.history["loss"]).all()
        result = model.impute(tiny_traffic_dataset, segment="test")
        assert np.isfinite(result.median).all()

    def test_float32_loss_tracks_float64(self, tiny_traffic_dataset):
        losses = {}
        for dtype in ("float32", "float64"):
            config = PriSTIConfig.fast(
                window_length=8, epochs=2, iterations_per_epoch=2,
                num_diffusion_steps=4, num_samples=1, batch_size=2,
                dtype=dtype,
            )
            losses[dtype] = PriSTI(config).fit(tiny_traffic_dataset).history["loss"]
        # Identical RNG streams (noise is drawn in float64 and cast), so the
        # two dtypes differ only by accumulated rounding.
        assert np.allclose(losses["float32"], losses["float64"], rtol=1e-4, atol=1e-6)


# ----------------------------------------------------------------------
# PR-1 equivalence in both dtypes
# ----------------------------------------------------------------------
class TestInferenceEquivalenceBothDtypes:
    @pytest.mark.parametrize("dtype,tolerance", [("float64", 1e-10), ("float32", 1e-3)])
    def test_batched_matches_serial(self, tiny_traffic_dataset, dtype, tolerance):
        config = PriSTIConfig.fast(
            window_length=8, epochs=1, iterations_per_epoch=1,
            num_diffusion_steps=6, num_samples=2, batch_size=2,
            dtype=dtype,
        )
        model = PriSTI(config)
        model.fit(tiny_traffic_dataset)

        model.diffusion.rng = np.random.default_rng(5)
        batched = model.impute(tiny_traffic_dataset, segment="test", batched=True)
        model.diffusion.rng = np.random.default_rng(5)
        serial = model.impute(tiny_traffic_dataset, segment="test", batched=False)
        assert np.max(np.abs(batched.samples - serial.samples)) <= tolerance
